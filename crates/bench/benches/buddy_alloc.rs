//! Micro-benchmarks for the buddy allocator — the substrate
//! whose behaviour Page Steering manipulates.

use hh_bench::harness::{BatchSize, Criterion};
use hh_bench::{criterion_group, criterion_main};
use hh_buddy::{BuddyAllocator, MigrateType, PcpConfig};

fn frames(mib: u64) -> u64 {
    mib << 20 >> 12
}

fn bench_alloc_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("buddy");

    group.bench_function("alloc_free_order0_movable", |b| {
        b.iter_batched_ref(
            || BuddyAllocator::new(frames(64)),
            |buddy| {
                let p = buddy.alloc(0, MigrateType::Movable).unwrap();
                buddy.free(p, 0);
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("alloc_free_order9_pinned", |b| {
        b.iter_batched_ref(
            || BuddyAllocator::new(frames(64)),
            |buddy| {
                let p = buddy.alloc(9, MigrateType::Movable).unwrap();
                buddy.set_migrate_type(p, 9, MigrateType::Unmovable);
                buddy.free(p, 9);
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("pcp_hit_path", |b| {
        let mut buddy = BuddyAllocator::with_pcp(frames(64), PcpConfig::standard());
        // Warm the cache.
        let p = buddy.alloc_page(MigrateType::Unmovable).unwrap();
        buddy.free_page(p);
        b.iter(|| {
            let p = buddy.alloc_page(MigrateType::Unmovable).unwrap();
            buddy.free_page(p);
        })
    });

    group.bench_function("steal_path_first_unmovable", |b| {
        b.iter_batched_ref(
            || BuddyAllocator::new(frames(64)),
            |buddy| {
                // First unmovable alloc on a movable-only zone: steal.
                let p = buddy.alloc(0, MigrateType::Unmovable).unwrap();
                buddy.free(p, 0);
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("fragmentation_churn_1k", |b| {
        b.iter_batched_ref(
            || BuddyAllocator::new(frames(64)),
            |buddy| {
                let mut held = Vec::with_capacity(1000);
                for i in 0..1000u64 {
                    let order = (i % 4) as u8;
                    held.push((buddy.alloc(order, MigrateType::Unmovable).unwrap(), order));
                }
                for (p, order) in held {
                    buddy.free(p, order);
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_alloc_free);
criterion_main!(benches);

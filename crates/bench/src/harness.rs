//! A miniature micro-benchmark harness with a criterion-shaped API.
//!
//! The workspace builds fully offline, so the micro-benchmarks under
//! `benches/` run on this self-contained harness instead of an external
//! crate. It reproduces the small criterion surface those benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`]/
//! [`Bencher::iter_batched_ref`], and the
//! [`criterion_group!`](crate::criterion_group)/
//! [`criterion_main!`](crate::criterion_main) macros — with
//! wall-clock timing from [`std::time::Instant`].
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples;
//! the report prints min / mean / median per-iteration time. The numbers
//! are indicative (no outlier rejection, no statistical tests) but stable
//! enough to compare orders of magnitude and scaling behaviour.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::baseline::{BenchRecord, BenchReport};

// Table formatting lives at the crate root (the Table 1/3 binaries use
// it too); re-exported here so harness users get the full presentation
// toolkit from one module.
pub use crate::{fit_widths, header, row};

/// Results of every bench run so far in this process, drained by
/// [`finish`] into the `HH_BENCH_JSON` report.
static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Whether this process runs the CI smoke configuration
/// (`HH_BENCH_QUICK=1`): smaller workloads, fewer samples. Quick and
/// full runs are never comparable, so the flag is stamped into the JSON
/// report too.
pub fn quick() -> bool {
    std::env::var_os("HH_BENCH_QUICK").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Writes the collected bench records to the path in `HH_BENCH_JSON`, if
/// set. Called by [`criterion_main!`](crate::criterion_main) after all
/// groups ran; a no-op without the env var, and on a second call.
pub fn finish() {
    let records = std::mem::take(&mut *RECORDS.lock().expect("bench registry poisoned"));
    let Some(path) = std::env::var_os("HH_BENCH_JSON") else {
        return;
    };
    let report = BenchReport {
        quick: quick(),
        records,
    };
    let path = std::path::PathBuf::from(path);
    match report.save(&path) {
        Ok(()) => println!(
            "bench report: {} record(s) written to {}",
            report.records.len(),
            path.display()
        ),
        Err(e) => {
            eprintln!("bench report: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// How batched inputs are sized. Retained for criterion source
/// compatibility; the harness runs one routine invocation per sample
/// either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
            scenario: "default".to_string(),
            seed: 0,
        }
    }
}

/// A named collection of benchmarks sharing a sample budget.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    scenario: String,
    seed: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Tags every subsequent bench in this group with the scenario and
    /// seed it runs on; stamped into the JSON report.
    pub fn meta(&mut self, scenario: &str, seed: u64) -> &mut Self {
        self.scenario = scenario.to_string();
        self.seed = seed;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut f = f;
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
            iters: 0,
            flips_per_iter: None,
            peak_rss_kib: None,
        };
        f(&mut bencher);
        bencher.report(&self.name, name, &self.scenario, self.seed);
        self
    }

    /// Ends the group (criterion compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters: u64,
    flips_per_iter: Option<f64>,
    peak_rss_kib: Option<u64>,
}

impl Bencher {
    /// Times `routine` directly, batching iterations per sample so that
    /// sub-microsecond routines still get a measurable sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibrate: how many iterations fit in ~1 ms?
        let probe_start = Instant::now();
        std::hint::black_box(routine());
        let once = probe_start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;

        // Warm-up.
        for _ in 0..per_sample.min(100) {
            std::hint::black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample);
            self.iters += u64::from(per_sample);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        // Warm-up.
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
            self.iters += 1;
        }
    }

    /// [`Bencher::iter_batched`] passing the input by mutable reference.
    pub fn iter_batched_ref<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> R,
        _size: BatchSize,
    ) {
        let mut warm = setup();
        std::hint::black_box(routine(&mut warm));
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.samples.push(start.elapsed());
            self.iters += 1;
        }
    }

    /// Tags this bench with the number of bit flips one iteration
    /// produces, so the JSON report can derive flips/sec. Call after the
    /// `iter` call, from the routine's known deterministic output.
    pub fn flips_per_iter(&mut self, flips: f64) {
        self.flips_per_iter = Some(flips);
    }

    /// Stamps the process's peak RSS (`VmHWM`, KiB) as of now into this
    /// bench's JSON record. Call after the `iter` call from benches
    /// whose point is memory behaviour (the campaign streaming series):
    /// the high-water mark is process-wide and monotonic, so order the
    /// cheap runs before the hungry ones within a bench binary. A no-op
    /// where procfs is unavailable.
    pub fn record_peak_rss(&mut self) {
        self.peak_rss_kib = hh_sim::mem::peak_rss_kib();
    }

    fn report(&mut self, group: &str, name: &str, scenario: &str, seed: u64) {
        if self.samples.is_empty() {
            println!("  {name:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "  {name:<40} min {:>12} | mean {:>12} | median {:>12} ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(median),
            self.samples.len(),
        );
        let ns = median.as_nanos() as f64;
        RECORDS
            .lock()
            .expect("bench registry poisoned")
            .push(BenchRecord {
                name: format!("{group}/{name}"),
                iters: self.iters,
                ns_per_iter: ns,
                flips_per_sec: self.flips_per_iter.map(|f| f * 1e9 / ns.max(1.0)),
                scenario: scenario.to_string(),
                seed,
                peak_rss_kib: self.peak_rss_kib,
            });
    }
}

/// Renders a duration with an SI unit suited to its magnitude.
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, criterion-style. After every group
/// ran, flushes the collected records to the `HH_BENCH_JSON` report (see
/// [`harness::finish`](crate::harness::finish)).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::harness::finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("harness-self-test");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.bench_function("batched_ref", |b| {
            b.iter_batched_ref(|| vec![1u8; 64], |v| v.pop(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}

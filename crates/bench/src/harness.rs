//! A miniature micro-benchmark harness with a criterion-shaped API.
//!
//! The workspace builds fully offline, so the micro-benchmarks under
//! `benches/` run on this self-contained harness instead of an external
//! crate. It reproduces the small criterion surface those benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`]/
//! [`Bencher::iter_batched_ref`], and the
//! [`criterion_group!`](crate::criterion_group)/
//! [`criterion_main!`](crate::criterion_main) macros — with
//! wall-clock timing from [`std::time::Instant`].
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples;
//! the report prints min / mean / median per-iteration time. The numbers
//! are indicative (no outlier rejection, no statistical tests) but stable
//! enough to compare orders of magnitude and scaling behaviour.

use std::time::{Duration, Instant};

// Table formatting lives at the crate root (the Table 1/3 binaries use
// it too); re-exported here so harness users get the full presentation
// toolkit from one module.
pub use crate::{fit_widths, header, row};

/// How batched inputs are sized. Retained for criterion source
/// compatibility; the harness runs one routine invocation per sample
/// either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 20,
        }
    }
}

/// A named collection of benchmarks sharing a sample budget.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut f = f;
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Ends the group (criterion compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` directly, batching iterations per sample so that
    /// sub-microsecond routines still get a measurable sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibrate: how many iterations fit in ~1 ms?
        let probe_start = Instant::now();
        std::hint::black_box(routine());
        let once = probe_start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;

        // Warm-up.
        for _ in 0..per_sample.min(100) {
            std::hint::black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        // Warm-up.
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// [`Bencher::iter_batched`] passing the input by mutable reference.
    pub fn iter_batched_ref<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> R,
        _size: BatchSize,
    ) {
        let mut warm = setup();
        std::hint::black_box(routine(&mut warm));
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("  {name:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "  {name:<40} min {:>12} | mean {:>12} | median {:>12} ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(median),
            self.samples.len(),
        );
    }
}

/// Renders a duration with an SI unit suited to its magnitude.
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("harness-self-test");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.bench_function("batched_ref", |b| {
            b.iter_batched_ref(|| vec![1u8; 64], |v| v.pop(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}

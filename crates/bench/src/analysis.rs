//! §5.3.1 / §5.3.3: the analytical success bound and end-to-end time
//! estimates, with Monte-Carlo validation.

use hh_sim::ByteSize;
use hyperhammer::analysis::{
    expected_attempts, expected_end_to_end_days, monte_carlo_bound, success_probability,
};

/// Prints the full analysis section.
pub fn print() {
    println!("== §5.3.1 success-probability bound ==");
    for (vm_gib, host_gib) in [(16u64, 16u64), (13, 16), (8, 16), (4, 16), (2, 16)] {
        let vm = ByteSize::gib(vm_gib);
        let host = ByteSize::gib(host_gib);
        let p = success_probability(vm, host);
        println!(
            "  VM {vm_gib:>2} GiB / host {host_gib} GiB: p = {:.6} (1 in {:.0} attempts)",
            p,
            expected_attempts(vm, host)
        );
    }
    println!("  limit case (VM == host): 1 in 512 — the paper's bound.");
    println!();

    println!("== Monte-Carlo validation of the bound ==");
    for (vm_gib, trials) in [(16u64, 2_000_000u64), (13, 2_000_000), (4, 2_000_000)] {
        let r = monte_carlo_bound(ByteSize::gib(vm_gib), ByteSize::gib(16), trials, 0xbeef);
        println!(
            "  VM {vm_gib:>2} GiB: empirical {:.6} vs analytical {:.6} ({} trials)",
            r.empirical_probability, r.analytical_probability, r.trials
        );
    }
    println!();

    println!("== §5.3.3 expected end-to-end attack time ==");
    let s1 = expected_end_to_end_days(72.0, 96, 12, 512.0);
    let s2 = expected_end_to_end_days(48.0, 90, 12, 512.0);
    println!("  S1: 12/96 x 72 h per profile, 512 attempts -> {s1:.0} days (paper: 192)");
    println!("  S2: 12/90 x 48 h per profile, 512 attempts -> {s2:.0} days (paper: 137)");
}

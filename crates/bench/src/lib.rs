//! Experiment harness for the HyperHammer reproduction.
//!
//! One module per paper artefact; the binaries in `src/bin/` are thin
//! wrappers that run an experiment and print the table or figure series
//! in the paper's format. See `EXPERIMENTS.md` at the repository root
//! for paper-vs-measured numbers.
//!
//! | Artefact | Module | Binary |
//! |----------|--------|--------|
//! | §5.1 bank functions | [`bankfn`] | `cargo run -p hh-bench --bin bankfn` |
//! | Table 1 (profiling) | [`table1`] | `cargo run -p hh-bench --release --bin table1` |
//! | Figure 3 (noise pages) | [`fig3`] | `cargo run -p hh-bench --release --bin fig3` |
//! | Table 2 (page reuse) | [`table2`] | `cargo run -p hh-bench --release --bin table2` |
//! | Table 3 (attack cost) | [`table3`] | `cargo run -p hh-bench --release --bin table3` |
//! | §5.3 analysis | [`analysis`] | `cargo run -p hh-bench --bin analysis` |
//! | §6 / design ablations | [`ablations`] | `cargo run -p hh-bench --release --bin ablations` |
//!
//! Micro-benchmarks live under `benches/` and run on the self-contained
//! [`harness`] module (`cargo bench -p hh-bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod analysis;
pub mod bankfn;
pub mod baseline;
pub mod fig3;
pub mod harness;
pub mod table1;
pub mod table2;
pub mod table3;

/// Grows each declared column width to fit the widest cell in that
/// column, so [`row`]/[`header`] output stays pipe-aligned across a whole
/// table. Extra columns in a row beyond `min_widths` get width 1.
pub fn fit_widths(min_widths: &[usize], rows: &[Vec<String>]) -> Vec<usize> {
    let columns = rows
        .iter()
        .map(Vec::len)
        .chain(std::iter::once(min_widths.len()))
        .max()
        .unwrap_or(0);
    (0..columns)
        .map(|c| {
            rows.iter()
                .filter_map(|r| r.get(c))
                .map(String::len)
                .chain(std::iter::once(min_widths.get(c).copied().unwrap_or(1)))
                .max()
                .unwrap_or(1)
        })
        .collect()
}

/// Renders a row of pipe-separated cells with padded column widths.
///
/// A cell wider than its declared column grows that column for this row
/// rather than silently breaking the pipe grid; compute shared widths
/// with [`fit_widths`] first to keep every row of a table aligned.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::from("|");
    for (i, cell) in cells.iter().enumerate() {
        let width = widths.get(i).copied().unwrap_or(1).max(cell.len());
        out.push_str(&format!(" {cell:>width$} |"));
    }
    out
}

/// Renders a header + separator for [`row`]-formatted tables.
///
/// Like [`row`], a header name wider than its declared column grows the
/// column, and the separator mirrors the grown widths so the two lines
/// always agree.
pub fn header(names: &[&str], widths: &[usize]) -> String {
    let fitted: Vec<usize> = names
        .iter()
        .enumerate()
        .map(|(i, name)| widths.get(i).copied().unwrap_or(1).max(name.len()))
        .collect();
    let head = row(
        &names.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &fitted,
    );
    let sep: String = std::iter::once("|".to_string())
        .chain(fitted.iter().map(|w| format!("{}|", "-".repeat(w + 2))))
        .collect();
    format!("{head}\n{sep}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting() {
        let h = header(&["a", "bb"], &[4, 4]);
        assert!(h.contains("|    a |   bb |"));
        assert!(h.lines().nth(1).unwrap().starts_with("|------|"));
        let r = row(&["1".into(), "2".into()], &[4, 4]);
        assert_eq!(r, "|    1 |    2 |");
    }

    #[test]
    fn oversized_cells_grow_instead_of_misaligning() {
        // Regression: a cell wider than its declared column used to
        // overflow the pipe grid silently.
        let r = row(&["wide-cell".into(), "2".into()], &[4, 4]);
        assert_eq!(r, "| wide-cell |    2 |");

        let h = header(&["long-header", "b"], &[2, 2]);
        let mut lines = h.lines();
        let head = lines.next().unwrap();
        let sep = lines.next().unwrap();
        assert_eq!(head.len(), sep.len(), "separator must mirror grown widths");
        assert!(head.contains("| long-header |"));
    }

    #[test]
    fn fit_widths_aligns_whole_tables() {
        let rows = vec![
            vec!["s".to_string(), "123456".to_string()],
            vec!["longer-name".to_string(), "1".to_string()],
        ];
        let widths = fit_widths(&[4, 4], &rows);
        assert_eq!(widths, vec![11, 6]);
        let rendered: Vec<String> = rows.iter().map(|r| row(r, &widths)).collect();
        assert_eq!(rendered[0].len(), rendered[1].len(), "pipe-aligned");
        for line in &rendered {
            assert!(line.starts_with('|') && line.ends_with('|'));
        }
    }
}

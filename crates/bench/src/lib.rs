//! Experiment harness for the HyperHammer reproduction.
//!
//! One module per paper artefact; the binaries in `src/bin/` are thin
//! wrappers that run an experiment and print the table or figure series
//! in the paper's format. See `EXPERIMENTS.md` at the repository root
//! for paper-vs-measured numbers.
//!
//! | Artefact | Module | Binary |
//! |----------|--------|--------|
//! | §5.1 bank functions | [`bankfn`] | `cargo run -p hh-bench --bin bankfn` |
//! | Table 1 (profiling) | [`table1`] | `cargo run -p hh-bench --release --bin table1` |
//! | Figure 3 (noise pages) | [`fig3`] | `cargo run -p hh-bench --release --bin fig3` |
//! | Table 2 (page reuse) | [`table2`] | `cargo run -p hh-bench --release --bin table2` |
//! | Table 3 (attack cost) | [`table3`] | `cargo run -p hh-bench --release --bin table3` |
//! | §5.3 analysis | [`analysis`] | `cargo run -p hh-bench --bin analysis` |
//! | §6 / design ablations | [`ablations`] | `cargo run -p hh-bench --release --bin ablations` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod analysis;
pub mod bankfn;
pub mod fig3;
pub mod table1;
pub mod table2;
pub mod table3;

/// Renders a row of pipe-separated cells with padded column widths.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::from("|");
    for (cell, width) in cells.iter().zip(widths) {
        out.push_str(&format!(" {cell:>width$} |"));
    }
    out
}

/// Renders a header + separator for [`row`]-formatted tables.
pub fn header(names: &[&str], widths: &[usize]) -> String {
    let head = row(&names.iter().map(|s| s.to_string()).collect::<Vec<_>>(), widths);
    let sep: String = std::iter::once("|".to_string())
        .chain(widths.iter().map(|w| format!("{}|", "-".repeat(w + 2))))
        .collect();
    format!("{head}\n{sep}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting() {
        let h = header(&["a", "bb"], &[4, 4]);
        assert!(h.contains("|    a |   bb |"));
        assert!(h.lines().nth(1).unwrap().starts_with("|------|"));
        let r = row(&["1".into(), "2".into()], &[4, 4]);
        assert_eq!(r, "|    1 |    2 |");
    }
}

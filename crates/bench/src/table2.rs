//! Table 2: pages released by the VM and reused by EPTs.
//!
//! Paper reference (§5.2): for each setting, release `B` sub-blocks
//! (N = 512·B pages) and spray `S` of memory for EPT creation; report
//! `E` (EPT pages), `R` (released pages reused as EPT pages),
//! `R_N = R/N` and `R_E = R/E`. The trends to reproduce: growing `S` at
//! fixed `N` raises both ratios; shrinking `N` at fixed `S` raises `R_N`
//! and lowers `R_E`.

use hh_sim::addr::HUGE_PAGE_SIZE;
use hh_sim::Gpa;
use hyperhammer::machine::Scenario;
use hyperhammer::steering::PageSteering;

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Scenario name.
    pub setting: String,
    /// Spray size in GiB (`S`).
    pub s_gib: u64,
    /// Released sub-blocks (`B`).
    pub b_blocks: u64,
    /// Released pages (`N = 512·B`).
    pub n_pages: u64,
    /// EPT pages in the system (`E`).
    pub e_pages: u64,
    /// Released pages reused by EPTs (`R`).
    pub r_pages: u64,
}

impl Table2Row {
    /// `R_N` as a percentage.
    pub fn r_n_pct(&self) -> f64 {
        100.0 * self.r_pages as f64 / self.n_pages as f64
    }

    /// `R_E` as a percentage.
    pub fn r_e_pct(&self) -> f64 {
        100.0 * self.r_pages as f64 / self.e_pages as f64
    }
}

/// Runs one (S, B) cell of Table 2 on a fresh host.
///
/// The released sub-blocks are spread across the virtio-mem region (the
/// paper releases profiled blocks, whose placement is effectively
/// arbitrary).
///
/// # Panics
///
/// Panics on hypervisor errors.
pub fn run(scenario: &Scenario, s_gib: u64, b_blocks: u64) -> Table2Row {
    let mut host = scenario.boot_host();
    let mut vm = host
        .create_vm(scenario.vm_config())
        .expect("host backs the attacker VM");
    let steering = PageSteering::new(scenario.steering_params());

    steering
        .exhaust_noise(&mut host, &mut vm)
        .expect("exhaustion succeeds");
    host.reset_released_log();

    // Spread the released blocks across the region.
    let region = vm.virtio_mem();
    let total_blocks = region.region_size() / HUGE_PAGE_SIZE;
    let stride = (total_blocks / b_blocks).max(1);
    let victims: Vec<Gpa> = (0..b_blocks)
        .map(|i| {
            region
                .region_base()
                .add((i * stride % total_blocks) * HUGE_PAGE_SIZE)
        })
        .collect();
    let released = steering
        .release_hugepages(&mut host, &mut vm, &victims)
        .expect("release succeeds");
    assert_eq!(released.len() as u64, b_blocks, "victims must be distinct");

    steering
        .spray_ept(&mut host, &mut vm, s_gib << 30)
        .expect("spray succeeds");

    let reuse = PageSteering::reuse_stats(&host, &vm);
    vm.destroy(&mut host);
    Table2Row {
        setting: scenario.name.to_string(),
        s_gib,
        b_blocks,
        n_pages: reuse.released_pages,
        e_pages: reuse.ept_pages,
        r_pages: reuse.reused_pages,
    }
}

/// The paper's (S, B) sweep: S ∈ {5, 10} GiB at B = 100, then
/// B ∈ {70, 30, 20} at S = 10 GiB.
pub fn paper_sweep() -> Vec<(u64, u64)> {
    vec![(5, 100), (10, 100), (10, 70), (10, 30), (10, 20)]
}

/// Prints the table.
pub fn print(rows: &[Table2Row]) {
    println!("Table 2: pages released from the VM and reused by EPTs.");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.setting.clone(),
                format!("{} GB", r.s_gib),
                r.b_blocks.to_string(),
                r.n_pages.to_string(),
                r.e_pages.to_string(),
                r.r_pages.to_string(),
                format!("{:.1}%", r.r_n_pct()),
                format!("{:.1}%", r.r_e_pct()),
            ]
        })
        .collect();
    let widths = crate::fit_widths(&[8, 6, 4, 6, 6, 6, 7, 7], &cells);
    println!(
        "{}",
        crate::header(&["Setting", "S", "B", "N", "E", "R", "R_N", "R_E"], &widths)
    );
    for r in &cells {
        println!("{}", crate::row(r, &widths));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let row = Table2Row {
            setting: "T".into(),
            s_gib: 10,
            b_blocks: 20,
            n_pages: 10_240,
            e_pages: 5_000,
            r_pages: 2_500,
        };
        assert!((row.r_n_pct() - 24.414).abs() < 0.01);
        assert!((row.r_e_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn paper_sweep_matches_table2_cells() {
        let sweep = paper_sweep();
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[0], (5, 100));
        assert!(sweep.iter().skip(1).all(|&(s, _)| s == 10));
    }
}

//! §5.1 preliminaries: DRAMDig-style recovery of the DRAM address
//! functions from the row-buffer timing side channel.

use hh_dram::dramdig::{recover, RecoveredMap};
use hh_dram::geometry::DramGeometry;
use hh_dram::timing::{AccessTiming, TimingProbe};
use hyperhammer::machine::Scenario;

/// Recovery result for one scenario.
#[derive(Debug, Clone)]
pub struct BankFnResult {
    /// Scenario name.
    pub system: String,
    /// The recovered map.
    pub map: RecoveredMap,
    /// Whether the recovered function is equivalent to the installed one.
    pub equivalent: bool,
    /// Whether every recovered mask uses only bits below 21 (THP-visible).
    pub thp_computable: bool,
}

/// Runs the recovery against a scenario's DRAM geometry.
///
/// # Panics
///
/// Panics if recovery fails (it cannot on the supported geometries).
pub fn run(scenario: &Scenario) -> BankFnResult {
    let geometry: DramGeometry = scenario.host_config().dimm.geometry.clone();
    let probe = TimingProbe::new(geometry.clone(), AccessTiming::ddr4_2666());
    let map = recover(&probe).expect("paper geometries recover cleanly");
    BankFnResult {
        system: scenario.name.to_string(),
        equivalent: map.bank_fn.equivalent_to(geometry.bank_fn()),
        thp_computable: map.bank_fn.uses_only_bits_below(21),
        map,
    }
}

/// Prints one result.
pub fn print(result: &BankFnResult) {
    println!(
        "{}: recovered bank function: {}",
        result.system, result.map.bank_fn
    );
    println!(
        "    equivalent to installed function: {} | {} banks | {} timing measurements",
        result.equivalent,
        result.map.bank_fn.bank_count(),
        result.map.measurements
    );
    println!("    definite row bits: {:?}", result.map.definite_row_bits);
    println!(
        "    fully computable from hugepage offsets (bits < 21): {}",
        result.thp_computable
    );
    println!();
}

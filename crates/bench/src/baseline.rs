//! Machine-readable bench results and baseline comparison.
//!
//! The micro-bench [`harness`](crate::harness) can emit its results as a
//! JSON report (`HH_BENCH_JSON=<path> cargo bench …`); this module owns
//! that schema, a reader for it, and the tolerance-based diff that
//! `scripts/bench_diff.sh` and the `bench-diff` CLI subcommand use to
//! fail CI on perf regressions.
//!
//! The workspace builds offline with no external crates, so the format
//! is written and parsed here by hand. The schema is deliberately flat —
//! see `EXPERIMENTS.md` ("Test and bench artefacts") for the field
//! reference and the re-baselining policy.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Schema tag emitted in every report; bumped on breaking changes.
pub const SCHEMA: &str = "hyperhammer-bench-v1";

/// Relative slowdown tolerated before a comparison fails, when the
/// caller does not override it.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// One benchmark's measured result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Fully qualified name, `group/bench`.
    pub name: String,
    /// Total routine iterations timed across all samples.
    pub iters: u64,
    /// Median per-iteration wall time in nanoseconds.
    pub ns_per_iter: f64,
    /// Bit flips produced per second, for hammer-shaped benches that
    /// report their flip count; `None` elsewhere.
    pub flips_per_sec: Option<f64>,
    /// Scenario the bench ran on (`"default"` when not scenario-bound).
    pub scenario: String,
    /// Deterministic seed the bench ran with (0 when seedless).
    pub seed: u64,
    /// Process peak RSS (`VmHWM`, KiB) observed when the bench
    /// finished, for memory-bound benches that opt in via
    /// [`Bencher::record_peak_rss`](crate::harness::Bencher::record_peak_rss);
    /// `None` elsewhere and in reports written before the field existed.
    pub peak_rss_kib: Option<u64>,
}

/// A full bench report: every record one `cargo bench` invocation
/// produced.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Whether the run used the `HH_BENCH_QUICK=1` smoke configuration.
    /// Quick and full runs use different workloads, so diffs across the
    /// two are refused.
    pub quick: bool,
    /// Measured benches, in execution order.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Serializes the report (pretty-printed, stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": {},", quote(SCHEMA));
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"records\": [");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            let flips = match r.flips_per_sec {
                Some(f) => format_f64(f),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "    {{\"name\": {}, \"iters\": {}, \"ns_per_iter\": {}, \
                 \"flips_per_sec\": {}, \"scenario\": {}, \"seed\": {}",
                quote(&r.name),
                r.iters,
                format_f64(r.ns_per_iter),
                flips,
                quote(&r.scenario),
                r.seed,
            );
            // Written only when measured, so reports from benches that
            // never opt in stay byte-identical to pre-field baselines.
            if let Some(kib) = r.peak_rss_kib {
                let _ = write!(out, ", \"peak_rss_kib\": {kib}");
            }
            let _ = writeln!(out, "}}{comma}");
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        out
    }

    /// Parses a report produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = JsonParser::new(text).parse()?;
        let obj = value.as_obj().ok_or("top level must be an object")?;
        let schema = get(obj, "schema")?
            .as_str()
            .ok_or("schema must be a string")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (want {SCHEMA:?})"));
        }
        let quick = get(obj, "quick")?.as_bool().ok_or("quick must be a bool")?;
        let records = get(obj, "records")?
            .as_arr()
            .ok_or("records must be an array")?
            .iter()
            .map(|v| {
                let r = v.as_obj().ok_or("record must be an object")?;
                Ok(BenchRecord {
                    name: get(r, "name")?
                        .as_str()
                        .ok_or("name must be a string")?
                        .to_string(),
                    iters: get(r, "iters")?
                        .as_u64()
                        .ok_or("iters must be an integer")?,
                    ns_per_iter: get(r, "ns_per_iter")?
                        .as_f64()
                        .ok_or("ns_per_iter must be a number")?,
                    flips_per_sec: match get(r, "flips_per_sec")? {
                        Json::Null => None,
                        v => Some(v.as_f64().ok_or("flips_per_sec must be a number")?),
                    },
                    scenario: get(r, "scenario")?
                        .as_str()
                        .ok_or("scenario must be a string")?
                        .to_string(),
                    seed: get(r, "seed")?.as_u64().ok_or("seed must be an integer")?,
                    // Absent in pre-field reports — tolerate, don't fail.
                    peak_rss_kib: match get_opt(r, "peak_rss_kib") {
                        None | Some(Json::Null) => None,
                        Some(v) => Some(v.as_u64().ok_or("peak_rss_kib must be an integer")?),
                    },
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self { quick, records })
    }

    /// Reads and parses a report file.
    ///
    /// # Errors
    ///
    /// I/O errors and parse errors, with the path in the message.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Writes the report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }
}

/// Outcome of comparing one bench against its baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// Within tolerance of the baseline.
    Ok,
    /// Slower than baseline by more than the tolerance — a CI failure.
    Regression,
    /// Faster than baseline by more than the tolerance; not a failure,
    /// but the baseline understates current performance (re-baseline).
    Improved,
    /// Present in the baseline but missing from the current run — a CI
    /// failure (a silently dropped bench would mask regressions).
    Missing,
    /// Present only in the current run (a newly added bench).
    New,
}

/// One row of a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Bench name.
    pub name: String,
    /// Baseline ns/iter, when present.
    pub baseline_ns: Option<f64>,
    /// Current ns/iter, when present.
    pub current_ns: Option<f64>,
    /// `current / baseline` when both sides exist.
    pub ratio: Option<f64>,
    /// `current / baseline` peak RSS, when both runs measured it —
    /// reports without the field simply skip the memory comparison.
    pub rss_ratio: Option<f64>,
    /// Verdict for this bench.
    pub status: DiffStatus,
}

/// A complete baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Tolerance the comparison used (relative, e.g. 0.15 = ±15%).
    pub tolerance: f64,
    /// Per-bench rows, baseline order first, then new benches.
    pub entries: Vec<DiffEntry>,
}

impl DiffReport {
    /// Whether any entry fails CI (regression or missing bench).
    pub fn has_failures(&self) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e.status, DiffStatus::Regression | DiffStatus::Missing))
    }

    /// Whether any entry beat its baseline by more than the tolerance.
    /// Not a failure, but the baseline now understates real performance
    /// — regressions up to `(1 + tolerance) × stale baseline` would go
    /// unnoticed — so callers should prompt for a re-baseline.
    pub fn has_improvements(&self) -> bool {
        self.entries
            .iter()
            .any(|e| e.status == DiffStatus::Improved)
    }

    /// Count of entries with the given status.
    pub fn count(&self, status: DiffStatus) -> usize {
        self.entries.iter().filter(|e| e.status == status).count()
    }
}

/// Compares `current` against `baseline` with a relative `tolerance`.
///
/// # Errors
///
/// Refuses to compare a quick run against a full baseline (or vice
/// versa): the workloads differ, so the numbers are incomparable.
pub fn diff(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerance: f64,
) -> Result<DiffReport, String> {
    if baseline.quick != current.quick {
        return Err(format!(
            "cannot compare quick={} baseline against quick={} run",
            baseline.quick, current.quick
        ));
    }
    let mut entries = Vec::new();
    for base in &baseline.records {
        let cur = current.records.iter().find(|r| r.name == base.name);
        match cur {
            None => entries.push(DiffEntry {
                name: base.name.clone(),
                baseline_ns: Some(base.ns_per_iter),
                current_ns: None,
                ratio: None,
                rss_ratio: None,
                status: DiffStatus::Missing,
            }),
            Some(cur) => {
                let ratio = cur.ns_per_iter / base.ns_per_iter;
                let rss_ratio = match (base.peak_rss_kib, cur.peak_rss_kib) {
                    (Some(b), Some(c)) if b > 0 => Some(c as f64 / b as f64),
                    _ => None,
                };
                // Blowing the memory budget fails CI exactly like a
                // time regression; running leaner never does (peak RSS
                // has a floor — the process image — so a drop is not a
                // stale-baseline signal the way a time drop is).
                let status =
                    if ratio > 1.0 + tolerance || rss_ratio.is_some_and(|r| r > 1.0 + tolerance) {
                        DiffStatus::Regression
                    } else if ratio < 1.0 - tolerance {
                        DiffStatus::Improved
                    } else {
                        DiffStatus::Ok
                    };
                entries.push(DiffEntry {
                    name: base.name.clone(),
                    baseline_ns: Some(base.ns_per_iter),
                    current_ns: Some(cur.ns_per_iter),
                    ratio: Some(ratio),
                    rss_ratio,
                    status,
                });
            }
        }
    }
    for cur in &current.records {
        if !baseline.records.iter().any(|r| r.name == cur.name) {
            entries.push(DiffEntry {
                name: cur.name.clone(),
                baseline_ns: None,
                current_ns: Some(cur.ns_per_iter),
                ratio: None,
                rss_ratio: None,
                status: DiffStatus::New,
            });
        }
    }
    Ok(DiffReport { tolerance, entries })
}

/// Formats an f64 compactly but round-trippably (integers lose the
/// trailing `.0`; everything else keeps full precision).
fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value for the parser below.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    get_opt(obj, key).ok_or_else(|| format!("missing key {key:?}"))
}

/// [`get`] for keys added to the schema after v1 reports already
/// existed: absence is data, not an error.
fn get_opt<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A small recursive-descent JSON parser — enough for the bench schema
/// (`\uXXXX` escapes cover the full range: surrogate pairs combine
/// into their supplementary-plane scalar, lone surrogates are errors).
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing data at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}', got {:?} at byte {}",
                        other as char, self.pos
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']', got {:?} at byte {}",
                        other as char, self.pos
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex_escape()?;
                            let c = match code {
                                // High surrogate: must pair with an
                                // immediately following \uDC00..\uDFFF
                                // low surrogate (RFC 8259 §7) to form
                                // one supplementary-plane scalar.
                                0xd800..=0xdbff => {
                                    if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                        return Err(format!(
                                            "lone high surrogate \\u{code:04x} (expected \
                                             \\uDC00-\\uDFFF to follow)"
                                        ));
                                    }
                                    self.pos += 2;
                                    let low = self.hex_escape()?;
                                    if !(0xdc00..=0xdfff).contains(&low) {
                                        return Err(format!(
                                            "high surrogate \\u{code:04x} followed by \
                                             \\u{low:04x}, not a low surrogate"
                                        ));
                                    }
                                    let scalar = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(scalar).expect("paired surrogates are scalar")
                                }
                                0xdc00..=0xdfff => {
                                    return Err(format!(
                                        "lone low surrogate \\u{code:04x} (no preceding \
                                         high surrogate)"
                                    ));
                                }
                                code => char::from_u32(code).expect("BMP non-surrogate is scalar"),
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(format!("unknown escape \\{}", other as char));
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: copy the whole sequence through.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    let s = std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    /// Reads the 4 hex digits of a `\u` escape (the `\u` itself
    /// already consumed) and returns the code unit.
    fn hex_escape(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|_| "non-ascii \\u escape")?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number bytes")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, ns: f64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            iters: 1000,
            ns_per_iter: ns,
            flips_per_sec: Some(42.5),
            scenario: "default".to_string(),
            seed: 99,
            peak_rss_kib: None,
        }
    }

    fn with_rss(r: BenchRecord, kib: u64) -> BenchRecord {
        BenchRecord {
            peak_rss_kib: Some(kib),
            ..r
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport {
            quick: true,
            records: vec![
                record("dram/hammer_burst", 55_012.75),
                BenchRecord {
                    flips_per_sec: None,
                    seed: 0,
                    ..record("dram/bank_of", 5.0)
                },
            ],
        };
        let parsed = BenchReport::parse(&report.to_json()).expect("round trip");
        assert_eq!(parsed, report);
    }

    #[test]
    fn peak_rss_round_trips_and_tolerates_absence() {
        // Measured: survives a round trip.
        let report = BenchReport {
            quick: true,
            records: vec![with_rss(record("campaign/stream", 9.0), 5_640)],
        };
        let text = report.to_json();
        assert!(text.contains("\"peak_rss_kib\": 5640"));
        assert_eq!(BenchReport::parse(&text).expect("round trip"), report);

        // Unmeasured: the key is not even written, matching pre-field
        // reports byte for byte…
        let bare = BenchReport {
            quick: true,
            records: vec![record("campaign/serial", 9.0)],
        };
        assert!(!bare.to_json().contains("peak_rss_kib"));
        // …and a pre-field report (no key at all) still parses.
        let v1 = r#"{"schema": "hyperhammer-bench-v1", "quick": true, "records": [
            {"name": "a", "iters": 1, "ns_per_iter": 2.0,
             "flips_per_sec": null, "scenario": "default", "seed": 0}]}"#;
        let parsed = BenchReport::parse(v1).expect("pre-field report parses");
        assert_eq!(parsed.records[0].peak_rss_kib, None);
    }

    #[test]
    fn diff_compares_peak_rss_only_when_both_sides_measured_it() {
        let base = BenchReport {
            quick: true,
            records: vec![
                with_rss(record("bloats", 100.0), 1_000),
                record("unmeasured-base", 100.0),
                with_rss(record("steady", 100.0), 1_000),
                with_rss(record("slims", 100.0), 1_000),
            ],
        };
        let cur = BenchReport {
            quick: true,
            records: vec![
                // Flat time, 2.5× memory: a regression all the same.
                with_rss(record("bloats", 100.0), 2_500),
                // Only one side measured: no memory verdict possible.
                with_rss(record("unmeasured-base", 100.0), 9_999),
                with_rss(record("steady", 101.0), 1_050),
                // Leaner is welcome but is not a stale-baseline signal.
                with_rss(record("slims", 100.0), 400),
            ],
        };
        let d = diff(&base, &cur, DEFAULT_TOLERANCE).expect("comparable");
        assert_eq!(d.entries[0].status, DiffStatus::Regression);
        assert_eq!(d.entries[0].rss_ratio, Some(2.5));
        assert_eq!(d.entries[1].status, DiffStatus::Ok);
        assert_eq!(d.entries[1].rss_ratio, None);
        assert_eq!(d.entries[2].status, DiffStatus::Ok);
        assert_eq!(d.entries[3].status, DiffStatus::Ok);
        assert!(d.has_failures());
    }

    #[test]
    fn parse_rejects_wrong_schema_and_garbage() {
        assert!(BenchReport::parse("{}").is_err());
        assert!(BenchReport::parse("not json").is_err());
        let wrong = r#"{"schema": "other-v9", "quick": false, "records": []}"#;
        assert!(BenchReport::parse(wrong).unwrap_err().contains("schema"));
    }

    #[test]
    fn diff_flags_regressions_beyond_tolerance() {
        let base = BenchReport {
            quick: true,
            records: vec![record("a", 100.0), record("b", 100.0), record("c", 100.0)],
        };
        let cur = BenchReport {
            quick: true,
            records: vec![
                record("a", 110.0), // +10%: within ±15%
                record("b", 130.0), // +30%: regression
                record("c", 60.0),  // -40%: improvement, not a failure
            ],
        };
        let d = diff(&base, &cur, DEFAULT_TOLERANCE).expect("comparable");
        assert_eq!(d.entries[0].status, DiffStatus::Ok);
        assert_eq!(d.entries[1].status, DiffStatus::Regression);
        assert_eq!(d.entries[2].status, DiffStatus::Improved);
        assert!(d.has_failures());
        assert_eq!(d.count(DiffStatus::Regression), 1);
        assert!(d.has_improvements());
    }

    #[test]
    fn improvements_are_reported_without_failing() {
        let base = BenchReport {
            quick: true,
            records: vec![record("a", 100.0), record("b", 100.0)],
        };
        let cur = BenchReport {
            quick: true,
            records: vec![record("a", 50.0), record("b", 100.0)],
        };
        let d = diff(&base, &cur, DEFAULT_TOLERANCE).expect("comparable");
        assert!(!d.has_failures(), "an improvement alone must not fail CI");
        assert!(d.has_improvements(), "but it must prompt a re-baseline");
        let steady = diff(&base, &base, DEFAULT_TOLERANCE).expect("comparable");
        assert!(!steady.has_improvements());
    }

    #[test]
    fn diff_fails_on_dropped_benches_but_allows_new_ones() {
        let base = BenchReport {
            quick: false,
            records: vec![record("kept", 10.0), record("dropped", 10.0)],
        };
        let cur = BenchReport {
            quick: false,
            records: vec![record("kept", 10.0), record("added", 10.0)],
        };
        let d = diff(&base, &cur, DEFAULT_TOLERANCE).expect("comparable");
        assert!(d.has_failures(), "missing bench must fail");
        assert_eq!(d.count(DiffStatus::Missing), 1);
        assert_eq!(d.count(DiffStatus::New), 1);
    }

    #[test]
    fn diff_refuses_quick_vs_full() {
        let quick = BenchReport {
            quick: true,
            records: vec![],
        };
        let full = BenchReport {
            quick: false,
            records: vec![],
        };
        assert!(diff(&quick, &full, DEFAULT_TOLERANCE).is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let text = r#"{"a": [1, -2.5, 1e3], "b": {"q\"x": "yA\n"}, "c": null}"#;
        let v = JsonParser::new(text).parse().expect("parses");
        let obj = v.as_obj().unwrap();
        assert_eq!(get(obj, "a").unwrap().as_arr().unwrap().len(), 3);
        let b = get(obj, "b").unwrap().as_obj().unwrap();
        assert_eq!(get(b, "q\"x").unwrap().as_str().unwrap(), "yA\n");
        assert_eq!(get(obj, "c").unwrap(), &Json::Null);
    }

    #[test]
    fn parser_pairs_surrogate_escapes() {
        // `\ud83d\ude00` is 😀 (U+1F600); other producers may escape
        // non-BMP strings this way even though quote() emits raw UTF-8.
        let v = JsonParser::new("{\"s\": \"grin \\ud83d\\ude00!\"}")
            .parse()
            .expect("surrogate pair parses");
        let obj = v.as_obj().unwrap();
        assert_eq!(get(obj, "s").unwrap().as_str().unwrap(), "grin 😀!");
        // The BMP boundary cases stay plain scalars.
        let v = JsonParser::new("\"\\ud7ff\\ue000\"")
            .parse()
            .expect("BMP neighbours parse");
        assert_eq!(v.as_str().unwrap(), "\u{d7ff}\u{e000}");
    }

    #[test]
    fn parser_rejects_lone_and_reversed_surrogates() {
        for bad in [
            r#""\ud83d""#,        // lone high at end of string
            r#""\ud83d rest""#,   // high followed by plain text
            "\"\\ud83d\\u0041\"", // high followed by non-surrogate escape
            r#""\ude00""#,        // lone low
            r#""\ude00\ud83d""#,  // reversed pair
        ] {
            let err = JsonParser::new(bad).parse().expect_err(bad);
            assert!(err.contains("surrogate"), "{bad}: {err}");
        }
    }

    #[test]
    fn non_bmp_strings_round_trip_through_quote_and_parse() {
        let original = "name 😀 \u{10FFFF} plain";
        let quoted = quote(original);
        let v = JsonParser::new(&quoted).parse().expect("round-trips");
        assert_eq!(v.as_str().unwrap(), original);
    }
}

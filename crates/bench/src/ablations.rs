//! Ablations of the design decisions called out in `DESIGN.md`:
//!
//! 1. **PCP cache** — the paper names the per-CPU pageset as a noise
//!    source (§4.2.3). The ablation *measures* its actual weight: at most
//!    the cache's occupancy (≤ its high watermark, 512 pages) diverts
//!    EPT allocations, and refills drain the same buddy lists — so at
//!    attack-scale spray sizes the effect vanishes. The spray rule's
//!    "+2 GiB" margin covers it with two orders of magnitude to spare.
//! 2. **Noise exhaustion** — skipping the vIOMMU step leaves tens of
//!    thousands of small-order unmovable pages in front of the released
//!    blocks, collapsing the reuse ratio.
//! 3. **THP** — without hugepage-backed guest memory there are no 2 MiB
//!    EPT mappings to split (the multihit lever disappears) and the
//!    21-bit address leak is gone: profiling loses bank targeting.

use std::num::NonZeroUsize;

use hh_buddy::PcpConfig;
use hh_sim::addr::HUGE_PAGE_SIZE;
use hh_sim::Gpa;
use hyperhammer::machine::Scenario;
use hyperhammer::parallel::parallel_map;
use hyperhammer::steering::{PageSteering, ReuseStats};

/// Reuse statistics with and without one mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationResult {
    /// Baseline (mechanism enabled, standard attack).
    pub baseline: ReuseStats,
    /// Ablated configuration.
    pub ablated: ReuseStats,
}

fn steer(scenario: &Scenario, exhaust: bool, blocks: u64, spray_bytes: u64) -> ReuseStats {
    let mut host = scenario.boot_host();
    let mut vm = host
        .create_vm(scenario.vm_config())
        .expect("host backs the VM");
    let steering = PageSteering::new(scenario.steering_params());
    if exhaust {
        steering.exhaust_noise(&mut host, &mut vm).expect("exhaust");
    }
    host.reset_released_log();
    let region = vm.virtio_mem();
    let victims: Vec<Gpa> = (0..blocks)
        .map(|i| {
            region
                .region_base()
                .add(i * 7 % (region.region_size() / HUGE_PAGE_SIZE) * HUGE_PAGE_SIZE)
        })
        .collect();
    steering
        .release_hugepages(&mut host, &mut vm, &victims)
        .expect("release");
    steering
        .spray_ept(&mut host, &mut vm, spray_bytes)
        .expect("spray");
    PageSteering::reuse_stats(&host, &vm)
}

/// Ablation 1: PCP disabled.
pub fn pcp(scenario: &Scenario, blocks: u64, spray_bytes: u64) -> AblationResult {
    let baseline = steer(scenario, true, blocks, spray_bytes);
    let mut no_pcp = scenario.clone();
    // Rebuild the scenario's host config without the cache.
    let mut cfg = no_pcp.host_config().clone();
    cfg.pcp = PcpConfig::disabled();
    no_pcp = no_pcp.with_host_config(cfg);
    let ablated = steer(&no_pcp, true, blocks, spray_bytes);
    AblationResult { baseline, ablated }
}

/// Ablation 2: skip the vIOMMU noise-exhaustion step.
pub fn noise_exhaustion(scenario: &Scenario, blocks: u64, spray_bytes: u64) -> AblationResult {
    AblationResult {
        baseline: steer(scenario, true, blocks, spray_bytes),
        ablated: steer(scenario, false, blocks, spray_bytes),
    }
}

/// Ablation 3: THP off — reported as the count of EPT splits the spray
/// can trigger (zero without hugepage mappings).
pub fn thp(scenario: &Scenario, spray_bytes: u64) -> (u64, u64) {
    let with_thp = {
        let mut host = scenario.boot_host();
        let mut vm = host.create_vm(scenario.vm_config()).expect("vm");
        let steering = PageSteering::new(scenario.steering_params());
        steering
            .spray_ept(&mut host, &mut vm, spray_bytes)
            .expect("spray")
            .splits
    };
    let without_thp = {
        let mut host = scenario.boot_host();
        let mut cfg = scenario.vm_config();
        cfg.thp = false;
        let mut vm = host.create_vm(cfg).expect("vm");
        let steering = PageSteering::new(scenario.steering_params());
        steering
            .spray_ept(&mut host, &mut vm, spray_bytes)
            .expect("spray")
            .splits
    };
    (with_thp, without_thp)
}

/// One independent ablation measurement — each boots its own host, so
/// the set fans out over campaign-engine workers with identical results
/// for every worker count.
enum Task {
    PcpBaseline,
    PcpAblated,
    NoiseBaseline,
    NoiseAblated,
    ThpOn,
    ThpOff,
}

enum Measurement {
    Reuse(ReuseStats),
    Splits(u64),
}

impl Measurement {
    fn reuse(self) -> ReuseStats {
        match self {
            Self::Reuse(r) => r,
            Self::Splits(_) => unreachable!("reuse task produced splits"),
        }
    }

    fn splits(self) -> u64 {
        match self {
            Self::Splits(s) => s,
            Self::Reuse(_) => unreachable!("split task produced reuse stats"),
        }
    }
}

fn measure(scenario: &Scenario, blocks: u64, spray: u64, task: &Task) -> Measurement {
    // A small spray keeps the ~512-page cache visible to the PCP
    // ablation: every page the PCP serves is one that does NOT come from
    // a released block.
    let pcp_spray = 512 << 21;
    match task {
        Task::PcpBaseline => Measurement::Reuse(steer(scenario, true, blocks, pcp_spray)),
        Task::PcpAblated => {
            let mut cfg = scenario.host_config().clone();
            cfg.pcp = PcpConfig::disabled();
            let no_pcp = scenario.clone().with_host_config(cfg);
            Measurement::Reuse(steer(&no_pcp, true, blocks, pcp_spray))
        }
        Task::NoiseBaseline => Measurement::Reuse(steer(scenario, true, blocks, spray)),
        Task::NoiseAblated => Measurement::Reuse(steer(scenario, false, blocks, spray)),
        Task::ThpOn | Task::ThpOff => {
            let mut host = scenario.boot_host();
            let mut cfg = scenario.vm_config();
            if matches!(task, Task::ThpOff) {
                cfg.thp = false;
            }
            let mut vm = host.create_vm(cfg).expect("vm");
            let steering = PageSteering::new(scenario.steering_params());
            Measurement::Splits(
                steering
                    .spray_ept(&mut host, &mut vm, 1 << 30)
                    .expect("spray")
                    .splits,
            )
        }
    }
}

/// Prints all three ablations for the mid-size scenario, running the six
/// independent measurements on `jobs` workers.
pub fn print_all(jobs: NonZeroUsize) {
    let scenario = Scenario::small_attack();
    let blocks = 8;
    let spray = PageSteering::spray_budget(blocks as usize).min(3 << 30);

    let tasks = vec![
        Task::PcpBaseline,
        Task::PcpAblated,
        Task::NoiseBaseline,
        Task::NoiseAblated,
        Task::ThpOn,
        Task::ThpOff,
    ];
    let mut out = parallel_map(tasks, jobs, |_, task| {
        measure(&scenario, blocks, spray, &task)
    })
    .into_iter();
    let a = AblationResult {
        baseline: out.next().expect("pcp baseline").reuse(),
        ablated: out.next().expect("pcp ablated").reuse(),
    };
    let b = AblationResult {
        baseline: out.next().expect("noise baseline").reuse(),
        ablated: out.next().expect("noise ablated").reuse(),
    };
    let (with_thp, without) = (
        out.next().expect("thp on").splits(),
        out.next().expect("thp off").splits(),
    );

    println!("== Ablation 1: per-CPU pageset (PCP) cache ==");
    println!(
        "  with PCP:    R = {:>5} / N = {} (R_N {:.1}%)",
        a.baseline.reused_pages,
        a.baseline.released_pages,
        100.0 * a.baseline.r_n()
    );
    println!(
        "  without PCP: R = {:>5} / N = {} (R_N {:.1}%)",
        a.ablated.reused_pages,
        a.ablated.released_pages,
        100.0 * a.ablated.r_n()
    );
    println!("  (the cache's weight is bounded by its occupancy — <=512 pages —");
    println!("   and refills drain the same buddy lists, so the spray rule's +2 GiB");
    println!("   margin drowns it: a genuine null result worth knowing)");
    println!();

    println!("== Ablation 2: vIOMMU noise exhaustion ==");
    println!(
        "  with exhaustion:    R = {:>5}, R_E = {:.1}%",
        b.baseline.reused_pages,
        100.0 * b.baseline.r_e()
    );
    println!(
        "  without exhaustion: R = {:>5}, R_E = {:.1}%",
        b.ablated.reused_pages,
        100.0 * b.ablated.r_e()
    );
    println!("  (without §4.2.1 the noise pages soak up the EPT spray)");
    println!();

    println!("== Ablation 3: transparent hugepages ==");
    println!("  EPT splits with THP:    {with_thp}");
    println!("  EPT splits without THP: {without}");
    println!("  (no 2 MiB mappings -> no multihit splits -> no EPT spray)");
}

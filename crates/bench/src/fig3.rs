//! Figure 3: the number of noise pages over time while the attacker
//! exhausts small-order `MIGRATE_UNMOVABLE` blocks via the vIOMMU.
//!
//! Paper reference (§5.2): 60 000 IOVA mappings of a single page, 2 MiB
//! apart, with a 1 s delay per 1 000 mappings; on S1/S2 the count drops
//! rapidly below the 1 024-page threshold and then fluctuates between 0
//! and the threshold; S3 (OpenStack) starts much higher and takes
//! longer.

use hyperhammer::machine::Scenario;
use hyperhammer::steering::{NoiseSample, PageSteering};

/// The noise-page series for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Series {
    /// Scenario name.
    pub system: String,
    /// Samples (time, mappings, noise pages).
    pub samples: Vec<NoiseSample>,
}

impl Fig3Series {
    /// First sample at which the curve dropped below `threshold` pages.
    pub fn first_below(&self, threshold: u64) -> Option<&NoiseSample> {
        self.samples.iter().find(|s| s.noise_pages < threshold)
    }

    /// Maximum noise count after the first drop below `threshold` —
    /// quantifies the "fluctuates between zero and the threshold"
    /// claim.
    pub fn post_drop_max(&self, threshold: u64) -> Option<u64> {
        let drop_idx = self
            .samples
            .iter()
            .position(|s| s.noise_pages < threshold)?;
        self.samples[drop_idx..].iter().map(|s| s.noise_pages).max()
    }
}

/// Runs the exhaustion experiment for one scenario.
///
/// # Panics
///
/// Panics on hypervisor errors.
pub fn run(scenario: &Scenario) -> Fig3Series {
    let mut host = scenario.boot_host();
    let mut vm = host
        .create_vm(scenario.vm_config())
        .expect("host backs the attacker VM");
    let steering = PageSteering::new(scenario.steering_params());
    let samples = steering
        .exhaust_noise(&mut host, &mut vm)
        .expect("exhaustion runs to completion");
    Fig3Series {
        system: scenario.name.to_string(),
        samples,
    }
}

/// Renders the series as an ASCII curve (noise pages vs mappings), the
/// shape Figure 3 plots.
pub fn ascii_plot(series: &Fig3Series, width: usize, height: usize) -> String {
    let max_noise = series
        .samples
        .iter()
        .map(|s| s.noise_pages)
        .max()
        .unwrap_or(1)
        .max(1);
    let max_map = series
        .samples
        .iter()
        .map(|s| s.mappings)
        .max()
        .unwrap_or(1)
        .max(1);
    let mut grid = vec![vec![b' '; width]; height];
    // Threshold line at 1024 pages.
    if 1024 <= max_noise {
        let ty = height - 1 - (1024 * (height as u64 - 1) / max_noise) as usize;
        for cell in &mut grid[ty] {
            *cell = b'-';
        }
    }
    for s in &series.samples {
        let x = (s.mappings * (width as u64 - 1) / max_map) as usize;
        let y = height - 1 - (s.noise_pages * (height as u64 - 1) / max_noise) as usize;
        grid[y][x] = b'*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{max_noise:>7} |")
        } else if i == height - 1 {
            format!("{:>7} |", 0)
        } else {
            format!("{:>7} |", "")
        };
        out.push_str(&label);
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>9}0{:>width$}\n",
        "",
        max_map,
        width = width - 1
    ));
    out.push_str(&format!("{:>9} mappings ('-' = 1024-page threshold)\n", ""));
    out
}

/// Renders the series as CSV (`time_s,mappings,noise_pages`).
pub fn to_csv(series: &Fig3Series) -> String {
    let mut out = String::from("time_s,mappings,noise_pages\n");
    for s in &series.samples {
        out.push_str(&format!(
            "{:.3},{},{}\n",
            s.time.as_nanos() as f64 / 1e9,
            s.mappings,
            s.noise_pages
        ));
    }
    out
}

/// Prints one series as a (time, mappings, noise) table plus the
/// paper's two reference thresholds.
pub fn print(series: &Fig3Series) {
    println!(
        "Figure 3: noise pages at VM runtime on {} (thresholds: 512 / 1024)",
        series.system
    );
    let cells: Vec<Vec<String>> = series
        .samples
        .iter()
        .map(|s| {
            vec![
                format!("{}", s.time),
                s.mappings.to_string(),
                s.noise_pages.to_string(),
            ]
        })
        .collect();
    let widths = crate::fit_widths(&[10, 10, 12], &cells);
    println!(
        "{}",
        crate::header(&["time", "mappings", "noise pages"], &widths)
    );
    for s in &cells {
        println!("{}", crate::row(s, &widths));
    }
    if let Some(first) = series.first_below(1024) {
        println!(
            "--> dropped below 1024 noise pages after {} mappings ({})",
            first.mappings, first.time
        );
    }
    if let Some(max) = series.post_drop_max(1024) {
        println!("--> post-drop fluctuation peak: {max} pages");
    }
    println!();
    println!("{}", ascii_plot(series, 64, 12));
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_sim::clock::Clock;
    use hyperhammer::steering::NoiseSample;

    fn series(points: &[(u64, u64)]) -> Fig3Series {
        let mut clock = Clock::new();
        Fig3Series {
            system: "T".into(),
            samples: points
                .iter()
                .map(|&(m, n)| {
                    clock.advance_secs(1);
                    NoiseSample {
                        time: clock.now(),
                        mappings: m,
                        noise_pages: n,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn drop_detection() {
        let s = series(&[(0, 40_000), (1_000, 20_000), (2_000, 800), (3_000, 300)]);
        assert_eq!(s.first_below(1024).unwrap().mappings, 2_000);
        assert_eq!(s.post_drop_max(1024), Some(800));
        assert!(s.first_below(100).is_none());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = series(&[(0, 10), (500, 5)]);
        let csv = to_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,mappings,noise_pages");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].ends_with(",0,10"));
    }

    #[test]
    fn ascii_plot_is_bounded_and_marks_points() {
        let s = series(&[(0, 2048), (30_000, 1024), (60_000, 0)]);
        let plot = ascii_plot(&s, 40, 8);
        assert!(plot.contains('*'));
        assert!(plot.contains('-'), "threshold line present");
        for line in plot.lines().take(8) {
            assert!(line.len() <= 9 + 40);
        }
    }
}

//! Prints the §5.3 analytical model with Monte-Carlo validation.

fn main() {
    hh_bench::analysis::print();
}

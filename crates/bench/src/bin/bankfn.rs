//! DRAMDig-style bank-function recovery for S1 and S2 (§5.1).

use hyperhammer::machine::Scenario;

fn main() {
    for sc in [Scenario::s1(), Scenario::s2()] {
        let result = hh_bench::bankfn::run(&sc);
        hh_bench::bankfn::print(&result);
    }
    println!("Paper: S1 uses (17,21)(16,20)(15,19)(14,18)(6,13);");
    println!("       S2 uses (17,20)(16,19)(15,18)(7,14)(8,9,12,13,18,19).");
}

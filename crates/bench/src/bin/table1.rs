//! Regenerates Table 1 (memory profiling results) on S1 and S2.

use hyperhammer::machine::Scenario;

fn main() {
    let rows: Vec<_> = [Scenario::s1(), Scenario::s2()]
        .iter()
        .map(|sc| {
            eprintln!("profiling {} (full 12 GiB, two passes)...", sc.name);
            hh_bench::table1::run(sc)
        })
        .collect();
    hh_bench::table1::print(&rows);
    println!();
    println!("Paper reference: S1 72h/395/213/182/246/96, S2 48h/650/329/321/40/90");
}

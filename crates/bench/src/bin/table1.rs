//! Regenerates Table 1 (memory profiling results) on S1 and S2.
//!
//! ```text
//! table1 [--scenario NAME]...
//! ```
//!
//! `--scenario` (repeatable) narrows the run to the named scenarios —
//! `table1 --scenario tiny` is the CI smoke configuration. Without it
//! the paper's S1 and S2 are profiled in full.

use hyperhammer::machine::Scenario;

fn main() {
    let mut scenarios: Vec<Scenario> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scenario" => {
                let name = it.next().expect("--scenario needs a value");
                scenarios.push(Scenario::by_name(name).unwrap_or_else(|e| panic!("{e}")));
            }
            other => panic!("unknown option {other}"),
        }
    }
    let paper_set = scenarios.is_empty();
    if paper_set {
        scenarios = vec![Scenario::s1(), Scenario::s2()];
    }

    let rows: Vec<_> = scenarios
        .iter()
        .map(|sc| {
            eprintln!("profiling {}...", sc.name);
            hh_bench::table1::run(sc)
        })
        .collect();
    hh_bench::table1::print(&rows);
    if paper_set {
        println!();
        println!("Paper reference: S1 72h/395/213/182/246/96, S2 48h/650/329/321/40/90");
    }
}

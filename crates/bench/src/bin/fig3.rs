//! Regenerates Figure 3 (noise pages over time) on S1, S2 and S3.
//!
//! Pass `--csv DIR` to also write one CSV per setting for plotting.

use hyperhammer::machine::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    for sc in [Scenario::s1(), Scenario::s2(), Scenario::s3()] {
        eprintln!("exhausting noise pages on {}...", sc.name);
        let series = hh_bench::fig3::run(&sc);
        hh_bench::fig3::print(&series);
        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/fig3_{}.csv", series.system.to_lowercase());
            std::fs::write(&path, hh_bench::fig3::to_csv(&series))
                .unwrap_or_else(|e| eprintln!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }
}

//! Regenerates Table 3 (attack cost to first success) on S1 and S2.
//!
//! ```text
//! table3 [--scenario NAME]... [--variants] [--attempts N] [--seeds N]
//!        [--base-seed S] [--jobs N] [--faults R] [--fault-seed S]
//!        [--max-retries N] [--backoff MS] [--json]
//! ```
//!
//! `--scenario` (repeatable) narrows the run to the named scenarios
//! (default: the paper's S1 and S2); `table3 --scenario tiny` is the CI
//! smoke configuration. Scenario names accept an `@variant` suffix
//! (e.g. `tiny@balloon`), and `--variants` fans every selected scenario
//! out over all attack variants, appending a per-variant success-rate
//! comparison after the table (`--json` also emits it as NDJSON).
//! `--seeds N` widens each scenario to N
//! experiment seeds split from `--base-seed` (default: each scenario's
//! own paper seed, one cell per scenario). `--jobs` picks the worker
//! count (default: available parallelism); results are identical for
//! every value. `--faults R` injects transient hostile-host faults at
//! rate R per choke-point operation (seeded by `--fault-seed`);
//! `--max-retries` and `--backoff` tune the driver's recovery policy.

use hh_hv::FaultConfig;
use hh_sim::clock::SimDuration;
use hh_sim::rng::SimRng;
use hyperhammer::machine::Scenario;
use hyperhammer::parallel::{parallel_map, resolve_jobs};
use hyperhammer::steering::RetryPolicy;

fn main() {
    let mut max_attempts: usize = 600;
    let mut seeds: Option<usize> = None;
    let mut base_seed: u64 = 0;
    let mut jobs: Option<usize> = None;
    let mut faults_rate: f64 = 0.0;
    let mut fault_seed: u64 = 0;
    let mut retry = RetryPolicy::standard();
    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut variants = false;
    let mut json = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse()
                .unwrap_or_else(|e| panic!("bad {name}: {e}"))
        };
        match flag.as_str() {
            "--attempts" => max_attempts = value("--attempts") as usize,
            "--seeds" => seeds = Some(value("--seeds") as usize),
            "--base-seed" => base_seed = value("--base-seed"),
            "--jobs" => jobs = Some(value("--jobs") as usize),
            "--fault-seed" => fault_seed = value("--fault-seed"),
            "--max-retries" => retry.max_retries = value("--max-retries") as u32,
            "--backoff" => retry.backoff = SimDuration::from_millis(value("--backoff")),
            "--faults" => {
                // Parsed apart from `value`: the rate is the one f64 flag.
                let raw = it.next().expect("--faults needs a value");
                faults_rate = raw.parse().unwrap_or_else(|e| panic!("bad --faults: {e}"));
                assert!(
                    faults_rate.is_finite() && (0.0..=1.0).contains(&faults_rate),
                    "--faults must be a rate in 0..=1"
                );
            }
            "--scenario" => {
                let name = it.next().expect("--scenario needs a value");
                scenarios.push(Scenario::by_name(name).unwrap_or_else(|e| panic!("{e}")));
            }
            "--variants" => variants = true,
            "--json" => json = true,
            // Positional attempt budget, kept for earlier revisions'
            // `table3 600` invocation.
            n if n.parse::<usize>().is_ok() => max_attempts = n.parse().expect("checked above"),
            other => panic!("unknown option {other}"),
        }
    }

    let paper_set = scenarios.is_empty() && !variants;
    if scenarios.is_empty() {
        scenarios = vec![Scenario::s1(), Scenario::s2()];
    }
    if variants {
        // Fan every selected scenario out over the attack variants,
        // variant-major so each scenario's variants print together.
        scenarios = scenarios
            .into_iter()
            .flat_map(|sc| {
                hyperhammer::machine::AttackVariant::ALL
                    .iter()
                    .map(move |v| sc.clone().with_variant(*v))
            })
            .collect();
    }
    let fault_config = FaultConfig::uniform(faults_rate).with_seed(fault_seed);
    if fault_config.is_active() {
        scenarios = scenarios
            .into_iter()
            .map(|sc| sc.with_faults(fault_config))
            .collect();
        eprintln!("table3: injecting transient faults at rate {faults_rate} (seed {fault_seed})");
    }
    let jobs = resolve_jobs(jobs);
    eprintln!("table3: up to {max_attempts} attempts per cell on {jobs} workers...");

    let rows = match seeds {
        // The paper configuration: each scenario at its own seed, which
        // `run` reproduces exactly; scenarios fan out over the workers.
        None => parallel_map(scenarios, jobs, |_, sc| {
            hh_bench::table3::run(&sc, max_attempts, retry)
        }),
        Some(count) => {
            let cell_seeds: Vec<u64> = (0..count.max(1) as u64)
                .map(|i| SimRng::split_seed(base_seed, i))
                .collect();
            hh_bench::table3::run_grid(scenarios, max_attempts, &cell_seeds, jobs, retry)
        }
    };
    hh_bench::table3::print(&rows);
    let summaries = hh_bench::table3::summarize_variants(&rows);
    if summaries.len() > 1 {
        println!();
        hh_bench::table3::print_variant_summary(&summaries);
        if json {
            println!();
            print!("{}", hh_bench::table3::variant_summary_json(&summaries));
        }
    }
    if paper_set {
        println!();
        println!("Paper reference: S1 4.0 min / 16.7 h / 250; S2 4.7 min / 33.8 h / 432");
    }
}

//! Regenerates Table 3 (attack cost to first success) on S1 and S2.
//!
//! Pass a maximum attempt budget as the first argument (default 600).

use hyperhammer::machine::Scenario;

fn main() {
    let max_attempts: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    let rows: Vec<_> = [Scenario::s1(), Scenario::s2()]
        .iter()
        .map(|sc| {
            eprintln!("{}: profiling once, then up to {max_attempts} attempts...", sc.name);
            hh_bench::table3::run(sc, max_attempts)
        })
        .collect();
    hh_bench::table3::print(&rows);
    println!();
    println!("Paper reference: S1 4.0 min / 16.7 h / 250; S2 4.7 min / 33.8 h / 432");
}

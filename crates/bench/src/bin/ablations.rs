//! Ablations of the design decisions listed in DESIGN.md §6.
//!
//! ```text
//! ablations [--jobs N]
//! ```
//!
//! The six measurements are independent and fan out over `--jobs`
//! workers (default: available parallelism) with identical results for
//! every worker count.

use hyperhammer::parallel::resolve_jobs;

fn main() {
    let mut jobs: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--jobs" => {
                jobs = Some(
                    it.next()
                        .expect("--jobs needs a value")
                        .parse()
                        .expect("bad --jobs"),
                )
            }
            other => panic!("unknown option {other}"),
        }
    }
    hh_bench::ablations::print_all(resolve_jobs(jobs));
}

//! Ablations of the design decisions listed in DESIGN.md §6.

fn main() {
    hh_bench::ablations::print_all();
}

//! Regenerates Table 2 (released-page reuse by EPTs) on S1, S2 and S3.

use hyperhammer::machine::Scenario;

fn main() {
    let mut rows = Vec::new();
    for sc in [Scenario::s1(), Scenario::s2(), Scenario::s3()] {
        for (s_gib, b_blocks) in hh_bench::table2::paper_sweep() {
            eprintln!("{}: S = {s_gib} GiB, B = {b_blocks}...", sc.name);
            rows.push(hh_bench::table2::run(&sc, s_gib, b_blocks));
        }
    }
    hh_bench::table2::print(&rows);
    println!();
    println!("Expected trends (paper): S up at fixed N -> R_N and R_E up;");
    println!("N down at fixed S -> R_N up, R_E down.");
}

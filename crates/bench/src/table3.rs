//! Table 3: the cost of HyperHammer attack attempts.
//!
//! Paper reference (§5.3.2): profile once (reusing results via a
//! GPA→HPA debug hypercall), then repeat full attack attempts — Page
//! Steering against 12 vulnerable bits, hammer, detect, validate —
//! restarting the VM after every failure, until the first success.
//!
//! | Setting | Avg. time/attempt | Time to 1st success | Attempts |
//! |---------|-------------------|---------------------|----------|
//! | S1      | 4.0 mins          | 16.7 hrs            | 250      |
//! | S2      | 4.7 mins          | 33.8 hrs            | 432      |
//!
//! The experiment runs on the deterministic campaign engine
//! ([`hyperhammer::parallel`]): every (scenario × seed) cell is an
//! independent campaign, so `--jobs N` changes wall-clock time only —
//! results are bit-identical for every worker count.

use std::num::NonZeroUsize;

use hyperhammer::driver::DriverParams;
use hyperhammer::machine::{AttackVariant, Scenario};
use hyperhammer::parallel::{CampaignGrid, CellResult};
use hyperhammer::steering::RetryPolicy;

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Scenario name, `@variant`-qualified off the default variant.
    pub setting: String,
    /// Attack variant the row's cell ran.
    pub variant: AttackVariant,
    /// Experiment seed of this row's campaign cell.
    pub seed: u64,
    /// Mean simulated attempt duration, minutes.
    pub avg_attempt_mins: f64,
    /// Simulated time to the first success, hours (`None`: no success
    /// within the attempt budget).
    pub time_to_success_hours: Option<f64>,
    /// 1-based index of the first successful attempt.
    pub attempts_to_success: Option<usize>,
    /// Attempts executed.
    pub attempts_run: usize,
    /// Exploitable bits in the reused profiling catalogue.
    pub catalog_bits: usize,
}

impl From<&CellResult> for Table3Row {
    fn from(r: &CellResult) -> Self {
        let setting = if r.variant == AttackVariant::default() {
            r.scenario.to_string()
        } else {
            format!("{}@{}", r.scenario, r.variant.label())
        };
        Self {
            setting,
            variant: r.variant,
            seed: r.seed,
            avg_attempt_mins: r.stats.avg_attempt_mins(),
            time_to_success_hours: r.stats.time_to_first_success().map(|d| d.as_hours_f64()),
            attempts_to_success: r.stats.first_success(),
            attempts_run: r.stats.attempts.len(),
            catalog_bits: r.catalog_bits,
        }
    }
}

/// Runs the Table 3 experiment for one scenario, at the scenario's own
/// seed (the paper configuration). Any fault plan rides in the
/// scenario's host configuration ([`Scenario::with_faults`]); `retry`
/// sets the driver's transient-fault recovery —
/// [`RetryPolicy::standard`] reproduces earlier fault-free revisions
/// exactly, since with faults off the policy is dead code.
///
/// # Panics
///
/// Panics on hypervisor errors.
pub fn run(scenario: &Scenario, max_attempts: usize, retry: RetryPolicy) -> Table3Row {
    let rows = run_grid(
        vec![scenario.clone()],
        max_attempts,
        // `with_seed` at the scenario's own seed is a no-op, so this is
        // the exact serial experiment of earlier revisions.
        &[scenario.host_config().seed],
        NonZeroUsize::new(1).expect("1 is non-zero"),
        retry,
    );
    rows.into_iter().next().expect("one cell in, one row out")
}

/// Runs a (scenario × seed) grid of Table 3 cells on `jobs` workers.
/// Rows come back in grid order (scenario-major) regardless of worker
/// count; per-cell completions are logged to stderr as they happen.
///
/// # Panics
///
/// Panics on hypervisor errors.
pub fn run_grid(
    scenarios: Vec<Scenario>,
    max_attempts: usize,
    seeds: &[u64],
    jobs: NonZeroUsize,
    retry: RetryPolicy,
) -> Vec<Table3Row> {
    let params = DriverParams {
        retry,
        ..DriverParams::paper()
    };
    let grid = CampaignGrid::new(scenarios, params, max_attempts).with_seeds(seeds.to_vec());
    let results = grid
        .run_with_progress(jobs, |cell| {
            eprintln!(
                "  [{} seed {:#x}] {} attempts, first success: {}",
                cell.scenario,
                cell.seed,
                cell.stats.attempts.len(),
                cell.stats
                    .first_success()
                    .map_or("none".to_string(), |n| n.to_string()),
            );
        })
        .expect("campaign grid runs");
    results.iter().map(Table3Row::from).collect()
}

/// Prints the table.
pub fn print(rows: &[Table3Row]) {
    println!("Table 3: the cost of HyperHammer tests.");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.setting.clone(),
                format!("{:#x}", r.seed),
                format!("{:.1} mins", r.avg_attempt_mins),
                r.time_to_success_hours
                    .map_or("none".to_string(), |h| format!("{h:.1} hrs")),
                r.attempts_to_success
                    .map_or(format!(">{}", r.attempts_run), |a| a.to_string()),
                r.catalog_bits.to_string(),
            ]
        })
        .collect();
    let widths = crate::fit_widths(&[8, 6, 18, 18, 14, 10], &cells);
    println!(
        "{}",
        crate::header(
            &[
                "Setting",
                "Seed",
                "Avg time/attempt",
                "Time 1st success",
                "Attempts",
                "Cat. bits"
            ],
            &widths,
        )
    );
    for r in &cells {
        println!("{}", crate::row(r, &widths));
    }
}

/// Per-variant rollup of a cross-variant Table 3 run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantSummary {
    /// The attack variant the cells ran.
    pub variant: AttackVariant,
    /// Cells (scenario × seed) executed with this variant.
    pub cells: usize,
    /// Cells that reached a success within the attempt budget.
    pub succeeded: usize,
    /// Attempts executed across those cells.
    pub attempts: usize,
}

impl VariantSummary {
    /// Successful cells over cells run.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        self.succeeded as f64 / self.cells as f64
    }
}

/// Rolls Table 3 rows up per attack variant, in [`AttackVariant::ALL`]
/// order; variants with no rows are omitted.
#[must_use]
pub fn summarize_variants(rows: &[Table3Row]) -> Vec<VariantSummary> {
    AttackVariant::ALL
        .iter()
        .copied()
        .filter_map(|variant| {
            let mine: Vec<&Table3Row> = rows.iter().filter(|r| r.variant == variant).collect();
            if mine.is_empty() {
                return None;
            }
            Some(VariantSummary {
                variant,
                cells: mine.len(),
                succeeded: mine
                    .iter()
                    .filter(|r| r.attempts_to_success.is_some())
                    .count(),
                attempts: mine.iter().map(|r| r.attempts_run).sum(),
            })
        })
        .collect()
}

/// Prints the per-variant success-rate comparison (text form).
pub fn print_variant_summary(summaries: &[VariantSummary]) {
    println!("Per-variant success rate:");
    let cells: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                s.variant.label().to_string(),
                s.cells.to_string(),
                s.succeeded.to_string(),
                s.attempts.to_string(),
                format!("{:.0}%", s.success_rate() * 100.0),
            ]
        })
        .collect();
    let widths = crate::fit_widths(&[10, 6, 10, 9, 8], &cells);
    println!(
        "{}",
        crate::header(
            &["Variant", "Cells", "Succeeded", "Attempts", "Rate"],
            &widths,
        )
    );
    for r in &cells {
        println!("{}", crate::row(r, &widths));
    }
}

/// One NDJSON line per variant summary — the machine-readable form of
/// [`print_variant_summary`], field-compatible with the CLI campaign
/// report's per-variant records.
#[must_use]
pub fn variant_summary_json(summaries: &[VariantSummary]) -> String {
    let mut out = String::new();
    for s in summaries {
        out.push_str(&format!(
            "{{\"variant\": \"{}\", \"cells\": {}, \"succeeded\": {}, \"attempts\": {}, \
             \"success_rate\": {}}}\n",
            s.variant.label(),
            s.cells,
            s.succeeded,
            s.attempts,
            s.success_rate(),
        ));
    }
    out
}

//! Table 3: the cost of HyperHammer attack attempts.
//!
//! Paper reference (§5.3.2): profile once (reusing results via a
//! GPA→HPA debug hypercall), then repeat full attack attempts — Page
//! Steering against 12 vulnerable bits, hammer, detect, validate —
//! restarting the VM after every failure, until the first success.
//!
//! | Setting | Avg. time/attempt | Time to 1st success | Attempts |
//! |---------|-------------------|---------------------|----------|
//! | S1      | 4.0 mins          | 16.7 hrs            | 250      |
//! | S2      | 4.7 mins          | 33.8 hrs            | 432      |

use hyperhammer::driver::{AttackDriver, DriverParams};
use hyperhammer::machine::Scenario;
use hyperhammer::profile::ProfileParams;

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Scenario name.
    pub setting: String,
    /// Mean simulated attempt duration, minutes.
    pub avg_attempt_mins: f64,
    /// Simulated time to the first success, hours (`None`: no success
    /// within the attempt budget).
    pub time_to_success_hours: Option<f64>,
    /// 1-based index of the first successful attempt.
    pub attempts_to_success: Option<usize>,
    /// Attempts executed.
    pub attempts_run: usize,
    /// Exploitable bits in the reused profiling catalogue.
    pub catalog_bits: usize,
}

/// Runs the Table 3 experiment for one scenario.
///
/// # Panics
///
/// Panics on hypervisor errors.
pub fn run(scenario: &Scenario, max_attempts: usize) -> Table3Row {
    let mut host = scenario.boot_host();
    let driver = AttackDriver::new(DriverParams::paper());

    // One-time profiling with hypercall-assisted cataloguing (§5.3.2
    // excludes this from the attempt timing).
    let mut vm = host
        .create_vm(scenario.vm_config())
        .expect("host backs the attacker VM");
    let profile = ProfileParams {
        // Stability screening is what the catalogue reuses; profile all.
        ..scenario.profile_params()
    };
    let catalog = driver
        .profile_and_catalog(&mut host, &mut vm, profile)
        .expect("profiling succeeds");
    vm.destroy(&mut host);
    let catalog_bits = catalog.entries.len();

    let t0 = std::time::Instant::now();
    let stats = driver
        .campaign_with_progress(scenario, &mut host, &catalog, max_attempts, |i, record| {
            if i % 10 == 0 || record.outcome.is_success() {
                eprintln!(
                    "  [{}] attempt {i}: {} ({:.2}s real/attempt)",
                    scenario.name,
                    match &record.outcome {
                        hyperhammer::AttemptOutcome::Success(_) => "SUCCESS",
                        hyperhammer::AttemptOutcome::Failed(_) => "failed",
                        hyperhammer::AttemptOutcome::NoUsableBits => "no usable bits",
                    },
                    t0.elapsed().as_secs_f64() / i as f64,
                );
            }
        })
        .expect("campaign runs");

    Table3Row {
        setting: scenario.name.to_string(),
        avg_attempt_mins: stats.avg_attempt_mins(),
        time_to_success_hours: stats.time_to_first_success().map(|d| d.as_hours_f64()),
        attempts_to_success: stats.first_success(),
        attempts_run: stats.attempts.len(),
        catalog_bits,
    }
}

/// Prints the table.
pub fn print(rows: &[Table3Row]) {
    println!("Table 3: the cost of HyperHammer tests.");
    let widths = [8, 18, 18, 14, 10];
    println!(
        "{}",
        crate::header(
            &["Setting", "Avg time/attempt", "Time 1st success", "Attempts", "Cat. bits"],
            &widths,
        )
    );
    for r in rows {
        println!(
            "{}",
            crate::row(
                &[
                    r.setting.clone(),
                    format!("{:.1} mins", r.avg_attempt_mins),
                    r.time_to_success_hours
                        .map_or("none".to_string(), |h| format!("{h:.1} hrs")),
                    r.attempts_to_success
                        .map_or(format!(">{}", r.attempts_run), |a| a.to_string()),
                    r.catalog_bits.to_string(),
                ],
                &widths,
            )
        );
    }
}

//! Table 1: results of memory profiling on S1 and S2.
//!
//! Paper reference (§5.1):
//!
//! | System | Time | Total | 1→0 | 0→1 | Stable | Expl. |
//! |--------|------|-------|-----|-----|--------|-------|
//! | S1     | 72 h | 395   | 213 | 182 | 246    | 96    |
//! | S2     | 48 h | 650   | 329 | 321 | 40     | 90    |

use hyperhammer::machine::Scenario;
use hyperhammer::profile::Profiler;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Scenario name.
    pub system: String,
    /// Simulated profiling time in hours.
    pub time_hours: f64,
    /// Total vulnerable bits found.
    pub total: usize,
    /// 1→0 flips.
    pub one_to_zero: usize,
    /// 0→1 flips.
    pub zero_to_one: usize,
    /// Stable bits.
    pub stable: usize,
    /// Exploitable bits.
    pub exploitable: usize,
}

/// Runs the full profiling campaign for one scenario.
///
/// # Panics
///
/// Panics on hypervisor errors (the harness treats them as fatal).
pub fn run(scenario: &Scenario) -> Table1Row {
    let mut host = scenario.boot_host();
    let mut vm = host
        .create_vm(scenario.vm_config())
        .expect("host backs the attacker VM");
    let params = scenario.profile_params();
    let report = Profiler::new(params.clone())
        .run(&mut host, &mut vm)
        .expect("profiling runs to completion");
    let exploitable = report.exploitable(params.host_mem, &vm).len();
    Table1Row {
        system: scenario.name.to_string(),
        time_hours: report.duration.as_hours_f64(),
        total: report.total(),
        one_to_zero: report.one_to_zero(),
        zero_to_one: report.zero_to_one(),
        stable: report.stable(),
        exploitable,
    }
}

/// Prints the table for the given scenarios.
pub fn print(rows: &[Table1Row]) {
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                format!("{:.0} h", r.time_hours),
                r.total.to_string(),
                r.one_to_zero.to_string(),
                r.zero_to_one.to_string(),
                r.stable.to_string(),
                r.exploitable.to_string(),
            ]
        })
        .collect();
    let widths = crate::fit_widths(&[6, 7, 6, 5, 5, 6, 5], &cells);
    println!("Table 1: Results of Memory Profiling.");
    println!(
        "{}",
        crate::header(
            &["System", "Time", "Total", "1->0", "0->1", "Stable", "Expl."],
            &widths
        )
    );
    for r in &cells {
        println!("{}", crate::row(r, &widths));
    }
}

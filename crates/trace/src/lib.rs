//! Deterministic structured tracing and aggregate metrics for the
//! HyperHammer reproduction.
//!
//! The simulated attack stack (DRAM device, buddy allocator, hypervisor,
//! attack driver) emits typed [`Event`]s stamped with the **simulated**
//! clock — never wall-clock time — into a per-campaign-cell
//! [`TraceSink`]. Because every timestamp and every event payload is a
//! pure function of the experiment seed, traces inherit the engine's
//! determinism guarantee: a 4-worker campaign merges (in grid order) to
//! the byte-identical stream of the serial run.
//!
//! Two recording levels keep the cost model honest:
//!
//! * **Metrics** ([`TraceMode::Metrics`]) — monotonic [`Counter`]s,
//!   fixed-bucket log₂ [`Histogram`]s and per-[`Stage`] time/activation
//!   totals. Cheap enough to leave on for whole campaigns.
//! * **Full** ([`TraceMode::Full`]) — metrics plus the ordered event
//!   stream, for NDJSON export and replay-grade debugging.
//!
//! Instrumented code holds a [`Tracer`]: a cloneable handle that is a
//! no-op (one `Option` test) when tracing is off, so production paths
//! pay nothing when untraced.
//!
//! # Examples
//!
//! ```
//! use hh_trace::{Counter, Event, TraceMode, Tracer};
//!
//! let tracer = Tracer::new(TraceMode::Full);
//! tracer.set_now(1_000);
//! tracer.hammer(64, 2, 1);
//! let sink = tracer.take_sink().expect("tracing is on");
//! assert_eq!(sink.metrics().get(Counter::DramActivations), 64);
//! assert_eq!(sink.events()[0].nanos, 1_000);
//! assert!(matches!(sink.events()[0].event, Event::Hammer { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::cell::RefCell;
use std::rc::Rc;

/// Attack-pipeline stages whose simulated time and DRAM activity the
/// sink attributes separately (the `trace` CLI table's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// §4.1 memory profiling (hammer + scan the whole guest).
    Profile,
    /// §4.2.1 vIOMMU noise-page exhaustion.
    ExhaustNoise,
    /// §4.3 magic-value stamping of guest memory.
    StampMagic,
    /// §4.2.2 voluntary virtio-mem hugepage release.
    ReleaseHugepages,
    /// §4.2.3 EPT-page spray via iTLB-Multihit splits.
    SprayEpt,
    /// §6 balloon-variant steering: per-page releases landed via PCP
    /// LIFO (replaces ReleaseHugepages + SprayEpt in balloon cells).
    BalloonSteer,
    /// §6 Xen-variant steering: `decrease_reservation` releases plus
    /// p2m superpage demotions.
    XenSteer,
    /// §4.3 hammer, detect mapping changes, validate, escape.
    Exploit,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 8;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Profile,
        Stage::ExhaustNoise,
        Stage::StampMagic,
        Stage::ReleaseHugepages,
        Stage::SprayEpt,
        Stage::BalloonSteer,
        Stage::XenSteer,
        Stage::Exploit,
    ];

    /// Stable lower-snake name (used in NDJSON output and tables).
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Profile => "profile",
            Stage::ExhaustNoise => "exhaust_noise",
            Stage::StampMagic => "stamp_magic",
            Stage::ReleaseHugepages => "release_hugepages",
            Stage::SprayEpt => "spray_ept",
            Stage::BalloonSteer => "balloon_steer",
            Stage::XenSteer => "xen_steer",
            Stage::Exploit => "exploit",
        }
    }

    /// The stage's position in [`Stage::ALL`] — the index streaming
    /// aggregates use for per-stage arrays.
    pub const fn index(self) -> usize {
        match self {
            Stage::Profile => 0,
            Stage::ExhaustNoise => 1,
            Stage::StampMagic => 2,
            Stage::ReleaseHugepages => 3,
            Stage::SprayEpt => 4,
            Stage::BalloonSteer => 5,
            Stage::XenSteer => 6,
            Stage::Exploit => 7,
        }
    }
}

/// Monotonic counters that stay on in every non-[`Off`](TraceMode::Off)
/// mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// DRAM row-activation pairs issued by hammer loops.
    DramActivations,
    /// In-DIMM TRR refreshes triggered by hammering.
    DramTrrRefreshes,
    /// Rowhammer bit flips journaled by the DRAM device.
    DramBitFlips,
    /// Calls into [`hammer`](Tracer::hammer) (hammer-loop invocations).
    DramHammerCalls,
    /// Buddy allocations served (any order, direct or per-CPU).
    BuddyAllocs,
    /// Buddy frees (any order).
    BuddyFrees,
    /// Free-block halvings while expanding a higher order.
    BuddySplits,
    /// Buddy coalesces while freeing.
    BuddyMerges,
    /// Allocation failures (free lists exhausted at every order).
    BuddyExhaustions,
    /// iTLB-Multihit hugepage splits (fresh EPT page each).
    EptSplits,
    /// Hugepages executed by the EPT spray.
    EptSprayedHugepages,
    /// vIOMMU mappings established.
    ViommuMaps,
    /// virtio-mem sub-block unplugs (and balloon page releases).
    VirtioMemUnplugs,
    /// Attacker-VM (re)boots.
    VmReboots,
    /// Hammer plans compiled from scratch (plan-cache misses).
    DramPlanCompiles,
    /// Hammer bursts served from the compiled-plan cache.
    DramPlanHits,
    /// Transient faults injected by the host's fault plan.
    FaultsInjected,
    /// Stage operations retried after a transient fault.
    TransientRetries,
    /// Spray-width halvings after repeated transient spray failures.
    SprayDegradations,
    /// HTTP requests handled by the campaign server.
    ServerRequests,
    /// Campaign jobs accepted by the server's queue.
    ServerJobsSubmitted,
    /// Campaign jobs run to completion by the server.
    ServerJobsCompleted,
    /// Campaign jobs cancelled (queued or mid-run).
    ServerJobsCancelled,
    /// Server jobs that found a warm per-scenario template in the cache.
    ServerTemplateHits,
    /// Server jobs that had to build a per-scenario template cold.
    ServerTemplateMisses,
    /// Machine snapshots serialized (checkpoint writes).
    SnapshotWrites,
    /// Machine snapshots deserialized (checkpoint/resume restores).
    SnapshotReads,
    /// Copy-on-write machine forks taken from a live or restored host.
    SnapshotForks,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 28;

    /// Every counter, in declaration order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::DramActivations,
        Counter::DramTrrRefreshes,
        Counter::DramBitFlips,
        Counter::DramHammerCalls,
        Counter::BuddyAllocs,
        Counter::BuddyFrees,
        Counter::BuddySplits,
        Counter::BuddyMerges,
        Counter::BuddyExhaustions,
        Counter::EptSplits,
        Counter::EptSprayedHugepages,
        Counter::ViommuMaps,
        Counter::VirtioMemUnplugs,
        Counter::VmReboots,
        Counter::DramPlanCompiles,
        Counter::DramPlanHits,
        Counter::FaultsInjected,
        Counter::TransientRetries,
        Counter::SprayDegradations,
        Counter::ServerRequests,
        Counter::ServerJobsSubmitted,
        Counter::ServerJobsCompleted,
        Counter::ServerJobsCancelled,
        Counter::ServerTemplateHits,
        Counter::ServerTemplateMisses,
        Counter::SnapshotWrites,
        Counter::SnapshotReads,
        Counter::SnapshotForks,
    ];

    /// Stable lower-snake name (used in NDJSON output and tables).
    pub const fn name(self) -> &'static str {
        match self {
            Counter::DramActivations => "dram_activations",
            Counter::DramTrrRefreshes => "dram_trr_refreshes",
            Counter::DramBitFlips => "dram_bit_flips",
            Counter::DramHammerCalls => "dram_hammer_calls",
            Counter::BuddyAllocs => "buddy_allocs",
            Counter::BuddyFrees => "buddy_frees",
            Counter::BuddySplits => "buddy_splits",
            Counter::BuddyMerges => "buddy_merges",
            Counter::BuddyExhaustions => "buddy_exhaustions",
            Counter::EptSplits => "ept_splits",
            Counter::EptSprayedHugepages => "ept_sprayed_hugepages",
            Counter::ViommuMaps => "viommu_maps",
            Counter::VirtioMemUnplugs => "virtio_mem_unplugs",
            Counter::VmReboots => "vm_reboots",
            Counter::DramPlanCompiles => "dram_plan_compiles",
            Counter::DramPlanHits => "dram_plan_hits",
            Counter::FaultsInjected => "faults_injected",
            Counter::TransientRetries => "transient_retries",
            Counter::SprayDegradations => "spray_degradations",
            Counter::ServerRequests => "server_requests",
            Counter::ServerJobsSubmitted => "server_jobs_submitted",
            Counter::ServerJobsCompleted => "server_jobs_completed",
            Counter::ServerJobsCancelled => "server_jobs_cancelled",
            Counter::ServerTemplateHits => "server_template_hits",
            Counter::ServerTemplateMisses => "server_template_misses",
            Counter::SnapshotWrites => "snapshot_writes",
            Counter::SnapshotReads => "snapshot_reads",
            Counter::SnapshotForks => "snapshot_forks",
        }
    }

    const fn index(self) -> usize {
        match self {
            Counter::DramActivations => 0,
            Counter::DramTrrRefreshes => 1,
            Counter::DramBitFlips => 2,
            Counter::DramHammerCalls => 3,
            Counter::BuddyAllocs => 4,
            Counter::BuddyFrees => 5,
            Counter::BuddySplits => 6,
            Counter::BuddyMerges => 7,
            Counter::BuddyExhaustions => 8,
            Counter::EptSplits => 9,
            Counter::EptSprayedHugepages => 10,
            Counter::ViommuMaps => 11,
            Counter::VirtioMemUnplugs => 12,
            Counter::VmReboots => 13,
            Counter::DramPlanCompiles => 14,
            Counter::DramPlanHits => 15,
            Counter::FaultsInjected => 16,
            Counter::TransientRetries => 17,
            Counter::SprayDegradations => 18,
            Counter::ServerRequests => 19,
            Counter::ServerJobsSubmitted => 20,
            Counter::ServerJobsCompleted => 21,
            Counter::ServerJobsCancelled => 22,
            Counter::ServerTemplateHits => 23,
            Counter::ServerTemplateMisses => 24,
            Counter::SnapshotWrites => 25,
            Counter::SnapshotReads => 26,
            Counter::SnapshotForks => 27,
        }
    }
}

/// Number of log₂ buckets in a [`Histogram`]: bucket 0 holds zeros,
/// bucket `b ≥ 1` holds values in `[2^(b-1), 2^b)`, the last bucket
/// additionally absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 33;

/// A fixed-bucket log₂ histogram of `u64` samples (sizes or latencies).
///
/// Deterministic and mergeable: bucket boundaries are fixed powers of
/// two, so merging two histograms is element-wise addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a value.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((value.ilog2() as usize) + 1).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(value);
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub const fn total(&self) -> u64 {
        self.total
    }

    /// Mean sample value, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Per-bucket sample counts.
    pub const fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
    }
}

/// Aggregate metrics: always on while a [`Tracer`] is attached, even
/// when full event recording is off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metrics {
    counters: [u64; Counter::COUNT],
    /// Activations per hammer-loop invocation.
    pub hammer_activations: Histogram,
    /// Order of each buddy allocation served.
    pub alloc_order: Histogram,
    /// Simulated nanoseconds of each completed stage entry.
    pub stage_latency: Histogram,
    stage_nanos: [u64; Stage::COUNT],
    stage_entries: [u64; Stage::COUNT],
    stage_activations: [u64; Stage::COUNT],
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            counters: [0; Counter::COUNT],
            hammer_activations: Histogram::default(),
            alloc_order: Histogram::default(),
            stage_latency: Histogram::default(),
            stage_nanos: [0; Stage::COUNT],
            stage_entries: [0; Stage::COUNT],
            stage_activations: [0; Stage::COUNT],
        }
    }
}

impl Metrics {
    /// Current value of a counter.
    pub const fn get(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// Adds `by` to a counter. Inside a cell the [`Tracer`] does this
    /// through typed events; the campaign server bumps its own
    /// process-wide `Metrics` (requests served, jobs run, template
    /// cache hits) directly.
    pub fn bump(&mut self, counter: Counter, by: u64) {
        self.counters[counter.index()] += by;
    }

    /// Total simulated nanoseconds spent in a stage.
    pub const fn stage_nanos(&self, stage: Stage) -> u64 {
        self.stage_nanos[stage.index()]
    }

    /// Times a stage was entered.
    pub const fn stage_entries(&self, stage: Stage) -> u64 {
        self.stage_entries[stage.index()]
    }

    /// DRAM activations issued while a stage was current.
    pub const fn stage_activations(&self, stage: Stage) -> u64 {
        self.stage_activations[stage.index()]
    }

    /// Adds another cell's metrics into this one (element-wise; used to
    /// merge campaign cells in grid order).
    pub fn merge(&mut self, other: &Metrics) {
        for (mine, theirs) in self.counters.iter_mut().zip(other.counters.iter()) {
            *mine += theirs;
        }
        self.hammer_activations.merge(&other.hammer_activations);
        self.alloc_order.merge(&other.alloc_order);
        self.stage_latency.merge(&other.stage_latency);
        for (mine, theirs) in self.stage_nanos.iter_mut().zip(other.stage_nanos.iter()) {
            *mine += theirs;
        }
        for (mine, theirs) in self
            .stage_entries
            .iter_mut()
            .zip(other.stage_entries.iter())
        {
            *mine += theirs;
        }
        for (mine, theirs) in self
            .stage_activations
            .iter_mut()
            .zip(other.stage_activations.iter())
        {
            *mine += theirs;
        }
    }
}

/// A typed observation from the simulated stack.
///
/// Address payloads are raw `u64`s (HPA/GPA/IOVA as labelled) so the
/// crate stays dependency-free and events stay `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// One hammer-loop invocation completed on the DRAM device.
    Hammer {
        /// Row-activation pairs issued.
        activations: u64,
        /// TRR refreshes the loop triggered.
        trr_refreshes: u64,
        /// Bit flips the loop produced.
        flips: u64,
    },
    /// One Rowhammer bit flip committed to DRAM.
    BitFlip {
        /// Host-physical byte address of the corrupted cell.
        hpa: u64,
        /// Bit index within the byte.
        bit: u8,
        /// `true` for a 1→0 flip, `false` for 0→1.
        one_to_zero: bool,
    },
    /// The buddy allocator served an allocation.
    BuddyAlloc {
        /// Allocation order.
        order: u8,
    },
    /// The buddy allocator accepted a free.
    BuddyFree {
        /// Freed block order.
        order: u8,
    },
    /// A free block of `order` was halved to satisfy a smaller request.
    BuddySplit {
        /// Order being split (the larger one).
        order: u8,
    },
    /// Two buddies coalesced into a block of `order`.
    BuddyMerge {
        /// Resulting (larger) order.
        order: u8,
    },
    /// An allocation failed with every eligible free list empty.
    BuddyExhausted {
        /// Requested order.
        order: u8,
    },
    /// The iTLB-Multihit countermeasure split a 2 MiB EPT mapping.
    EptSplit {
        /// Guest-physical address whose execution faulted.
        gpa: u64,
    },
    /// An EPT-page spray pass finished.
    EptSpray {
        /// Hugepages executed.
        hugepages: u64,
        /// Splits (fresh EPT pages) actually triggered.
        splits: u64,
    },
    /// A vIOMMU DMA mapping was established.
    ViommuMap {
        /// I/O virtual address mapped.
        iova: u64,
    },
    /// A virtio-mem sub-block (or balloon page) was released to the host.
    VirtioMemUnplug {
        /// Guest-physical base of the released range.
        gpa: u64,
    },
    /// The attacker VM was (re)booted.
    VmReboot,
    /// The host's fault plan injected a transient failure.
    FaultInjected {
        /// Choke point the fault hit (stable lower-snake name).
        stage: &'static str,
        /// Modelled cause of the failure.
        cause: &'static str,
    },
    /// A stage operation was retried after a transient fault.
    Retry {
        /// Choke point being retried (stable lower-snake name).
        stage: &'static str,
        /// 1-based retry number for this operation.
        attempt: u64,
    },
    /// The EPT spray halved its remaining width after repeated faults.
    SprayDegraded {
        /// Remaining spray budget, bytes.
        budget: u64,
    },
    /// An attack-pipeline stage began.
    StageStart {
        /// Stage that began.
        stage: Stage,
    },
    /// An attack-pipeline stage completed.
    StageEnd {
        /// Stage that ended.
        stage: Stage,
        /// Simulated nanoseconds it took.
        nanos: u64,
    },
}

impl Event {
    /// Stable lower-snake discriminant name (the NDJSON `event` field).
    pub const fn kind(&self) -> &'static str {
        match self {
            Event::Hammer { .. } => "hammer",
            Event::BitFlip { .. } => "bit_flip",
            Event::BuddyAlloc { .. } => "buddy_alloc",
            Event::BuddyFree { .. } => "buddy_free",
            Event::BuddySplit { .. } => "buddy_split",
            Event::BuddyMerge { .. } => "buddy_merge",
            Event::BuddyExhausted { .. } => "buddy_exhausted",
            Event::EptSplit { .. } => "ept_split",
            Event::EptSpray { .. } => "ept_spray",
            Event::ViommuMap { .. } => "viommu_map",
            Event::VirtioMemUnplug { .. } => "virtio_mem_unplug",
            Event::VmReboot => "vm_reboot",
            Event::FaultInjected { .. } => "fault_injected",
            Event::Retry { .. } => "retry",
            Event::SprayDegraded { .. } => "spray_degraded",
            Event::StageStart { .. } => "stage_start",
            Event::StageEnd { .. } => "stage_end",
        }
    }
}

/// An [`Event`] stamped with the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Simulated time of the observation, nanoseconds since host boot.
    pub nanos: u64,
    /// The observation.
    pub event: Event,
}

/// What a [`Tracer`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No tracer attached; instrumentation is a no-op.
    #[default]
    Off,
    /// Aggregate [`Metrics`] only — no event stream.
    Metrics,
    /// Metrics plus the full ordered [`Event`] stream.
    Full,
}

impl TraceMode {
    /// Parses a mode name (`off` / `metrics` / `full`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "off" => Some(TraceMode::Off),
            "metrics" => Some(TraceMode::Metrics),
            "full" => Some(TraceMode::Full),
            _ => None,
        }
    }
}

/// Per-campaign-cell recorder: the ordered event stream plus aggregate
/// metrics, all stamped with simulated time.
///
/// Sinks from a parallel campaign merge deterministically: cells are
/// visited in grid order, each cell's events are already in simulated
/// chronological order, and [`Metrics::merge`] is element-wise addition
/// — so the merged output of `--jobs N` is byte-identical to serial.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSink {
    cell: usize,
    now: u64,
    record_events: bool,
    events: Vec<TimedEvent>,
    metrics: Metrics,
    current_stage: Option<(Stage, u64)>,
}

impl TraceSink {
    /// Creates a sink for a (non-`Off`) mode.
    pub fn new(mode: TraceMode) -> Self {
        Self {
            record_events: mode == TraceMode::Full,
            ..Self::default()
        }
    }

    /// [`TraceSink::new`] with a pre-sized event arena.
    ///
    /// A tiny campaign cell records tens of thousands of events; growing
    /// the stream through doubling reallocations is measurable on the
    /// hot path. The hint is a capacity reservation only — it cannot
    /// change *what* is recorded, so callers may derive it from
    /// scheduling-dependent observations (e.g. the previous cell's
    /// event count) without breaking byte-identical output. Ignored in
    /// [`TraceMode::Metrics`], which records no events.
    pub fn with_capacity(mode: TraceMode, events_hint: usize) -> Self {
        let mut sink = Self::new(mode);
        if sink.record_events {
            sink.events.reserve_exact(events_hint);
        }
        sink
    }

    /// Resets the sink for reuse on another campaign cell, keeping the
    /// event arena's allocation. Streaming campaigns serialize each
    /// cell's sink as the cell finishes and then hand the spent sink
    /// back through here, so one arena allocation serves every cell a
    /// worker processes. Recycling is a capacity optimisation only —
    /// a recycled sink records byte-identically to a fresh
    /// [`TraceSink::with_capacity`] sink — exactly like capacity hints.
    pub fn recycle(mut self, mode: TraceMode, events_hint: usize) -> Self {
        self.cell = 0;
        self.now = 0;
        self.record_events = mode == TraceMode::Full;
        self.events.clear();
        if self.record_events {
            self.events.reserve_exact(events_hint);
        }
        self.metrics = Metrics::default();
        self.current_stage = None;
        self
    }

    /// Campaign-grid cell index this sink belongs to (0 outside grids).
    pub const fn cell(&self) -> usize {
        self.cell
    }

    /// Assigns the campaign-grid cell index.
    pub fn set_cell(&mut self, cell: usize) {
        self.cell = cell;
    }

    /// Whether full event recording is on.
    pub const fn events_enabled(&self) -> bool {
        self.record_events
    }

    /// The recorded event stream, in simulated chronological order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// The aggregate metrics.
    pub const fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Latest simulated time reported to this sink.
    pub const fn now(&self) -> u64 {
        self.now
    }

    fn record(&mut self, event: Event) {
        if self.record_events {
            self.events.push(TimedEvent {
                nanos: self.now,
                event,
            });
        }
    }

    fn hammer(&mut self, activations: u64, trr_refreshes: u64, flips: u64) {
        self.metrics.bump(Counter::DramHammerCalls, 1);
        self.metrics.bump(Counter::DramActivations, activations);
        self.metrics.bump(Counter::DramTrrRefreshes, trr_refreshes);
        self.metrics.bump(Counter::DramBitFlips, flips);
        self.metrics.hammer_activations.record(activations);
        if let Some((stage, _)) = self.current_stage {
            self.metrics.stage_activations[stage.index()] += activations;
        }
        self.record(Event::Hammer {
            activations,
            trr_refreshes,
            flips,
        });
    }

    fn stage_start(&mut self, stage: Stage) {
        self.metrics.stage_entries[stage.index()] += 1;
        self.current_stage = Some((stage, self.now));
        self.record(Event::StageStart { stage });
    }

    fn stage_end(&mut self, stage: Stage) {
        let start = match self.current_stage.take() {
            Some((s, start)) if s == stage => start,
            // Mismatched or missing start: charge from now (zero span)
            // rather than corrupting another stage's total.
            _ => self.now,
        };
        let nanos = self.now.saturating_sub(start);
        self.metrics.stage_nanos[stage.index()] += nanos;
        self.metrics.stage_latency.record(nanos);
        self.record(Event::StageEnd { stage, nanos });
    }
}

/// Cloneable instrumentation handle threaded through the stack.
///
/// A detached tracer (the default) makes every call a no-op costing one
/// `Option` test. Attached tracers share one [`TraceSink`] per clone
/// family via `Rc<RefCell<…>>` — the simulation is single-threaded
/// within a campaign cell, and each cell builds its own tracer, so no
/// cross-thread sharing ever occurs.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    sink: Option<Rc<RefCell<TraceSink>>>,
}

impl Tracer {
    /// A detached (no-op) tracer.
    pub fn off() -> Self {
        Self::default()
    }

    /// Creates a tracer for `mode` (detached for [`TraceMode::Off`]).
    pub fn new(mode: TraceMode) -> Self {
        match mode {
            TraceMode::Off => Self::default(),
            mode => Self {
                sink: Some(Rc::new(RefCell::new(TraceSink::new(mode)))),
            },
        }
    }

    /// [`Tracer::new`] with a pre-sized event arena — see
    /// [`TraceSink::with_capacity`] for why hints are always safe.
    pub fn with_capacity(mode: TraceMode, events_hint: usize) -> Self {
        match mode {
            TraceMode::Off => Self::default(),
            mode => Self {
                sink: Some(Rc::new(RefCell::new(TraceSink::with_capacity(
                    mode,
                    events_hint,
                )))),
            },
        }
    }

    /// [`Tracer::with_capacity`] that reuses a previously taken sink's
    /// allocation via [`TraceSink::recycle`] — the per-worker
    /// flush-and-reuse path of streaming campaigns. Passing `None`
    /// falls back to a fresh arena.
    pub fn with_recycled(mode: TraceMode, events_hint: usize, recycled: Option<TraceSink>) -> Self {
        match mode {
            TraceMode::Off => Self::default(),
            mode => {
                let sink = match recycled {
                    Some(spent) => spent.recycle(mode, events_hint),
                    None => TraceSink::with_capacity(mode, events_hint),
                };
                Self {
                    sink: Some(Rc::new(RefCell::new(sink))),
                }
            }
        }
    }

    /// Whether a sink is attached.
    pub const fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Updates the sink's notion of simulated time; every subsequent
    /// event is stamped with it. Called by the host after each clock
    /// advance.
    pub fn set_now(&self, nanos: u64) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().now = nanos;
        }
    }

    /// Assigns the campaign-grid cell index to the sink.
    pub fn set_cell(&self, cell: usize) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().set_cell(cell);
        }
    }

    /// Extracts the sink, leaving a default (empty) one behind. Returns
    /// `None` for a detached tracer.
    pub fn take_sink(&self) -> Option<TraceSink> {
        self.sink
            .as_ref()
            .map(|sink| std::mem::take(&mut *sink.borrow_mut()))
    }

    /// Runs `f` against the live sink, if attached.
    pub fn inspect<R>(&self, f: impl FnOnce(&TraceSink) -> R) -> Option<R> {
        self.sink.as_ref().map(|sink| f(&sink.borrow()))
    }

    fn with<R>(&self, f: impl FnOnce(&mut TraceSink) -> R) {
        if let Some(sink) = &self.sink {
            f(&mut sink.borrow_mut());
        }
    }

    /// Records a completed hammer-loop invocation.
    pub fn hammer(&self, activations: u64, trr_refreshes: u64, flips: u64) {
        self.with(|s| s.hammer(activations, trr_refreshes, flips));
    }

    /// Records a hammer-plan compile or cache hit. Counter-only (no
    /// event), so full streams stay identical whether a burst ran from a
    /// cold or a cached plan.
    pub fn plan_lookup(&self, cache_hit: bool) {
        self.with(|s| {
            s.metrics.bump(
                if cache_hit {
                    Counter::DramPlanHits
                } else {
                    Counter::DramPlanCompiles
                },
                1,
            );
        });
    }

    /// Records one committed bit flip.
    pub fn bit_flip(&self, hpa: u64, bit: u8, one_to_zero: bool) {
        self.with(|s| {
            s.record(Event::BitFlip {
                hpa,
                bit,
                one_to_zero,
            })
        });
    }

    /// Records a served buddy allocation.
    pub fn buddy_alloc(&self, order: u8) {
        self.with(|s| {
            s.metrics.bump(Counter::BuddyAllocs, 1);
            s.metrics.alloc_order.record(u64::from(order));
            s.record(Event::BuddyAlloc { order });
        });
    }

    /// Records a buddy free.
    pub fn buddy_free(&self, order: u8) {
        self.with(|s| {
            s.metrics.bump(Counter::BuddyFrees, 1);
            s.record(Event::BuddyFree { order });
        });
    }

    /// Records a free-block halving.
    pub fn buddy_split(&self, order: u8) {
        self.with(|s| {
            s.metrics.bump(Counter::BuddySplits, 1);
            s.record(Event::BuddySplit { order });
        });
    }

    /// Records a buddy coalesce into `order`.
    pub fn buddy_merge(&self, order: u8) {
        self.with(|s| {
            s.metrics.bump(Counter::BuddyMerges, 1);
            s.record(Event::BuddyMerge { order });
        });
    }

    /// Records an out-of-memory allocation failure.
    pub fn buddy_exhausted(&self, order: u8) {
        self.with(|s| {
            s.metrics.bump(Counter::BuddyExhaustions, 1);
            s.record(Event::BuddyExhausted { order });
        });
    }

    /// Records an iTLB-Multihit hugepage split.
    pub fn ept_split(&self, gpa: u64) {
        self.with(|s| {
            s.metrics.bump(Counter::EptSplits, 1);
            s.record(Event::EptSplit { gpa });
        });
    }

    /// Records a finished EPT spray pass.
    pub fn ept_spray(&self, hugepages: u64, splits: u64) {
        self.with(|s| {
            s.metrics.bump(Counter::EptSprayedHugepages, hugepages);
            s.record(Event::EptSpray { hugepages, splits });
        });
    }

    /// Records an established vIOMMU mapping.
    pub fn viommu_map(&self, iova: u64) {
        self.with(|s| {
            s.metrics.bump(Counter::ViommuMaps, 1);
            s.record(Event::ViommuMap { iova });
        });
    }

    /// Records a virtio-mem sub-block (or balloon page) release.
    pub fn virtio_mem_unplug(&self, gpa: u64) {
        self.with(|s| {
            s.metrics.bump(Counter::VirtioMemUnplugs, 1);
            s.record(Event::VirtioMemUnplug { gpa });
        });
    }

    /// Records an attacker-VM (re)boot.
    pub fn vm_reboot(&self) {
        self.with(|s| {
            s.metrics.bump(Counter::VmReboots, 1);
            s.record(Event::VmReboot);
        });
    }

    /// Records a transient fault injected by the host's fault plan.
    pub fn fault_injected(&self, stage: &'static str, cause: &'static str) {
        self.with(|s| {
            s.metrics.bump(Counter::FaultsInjected, 1);
            s.record(Event::FaultInjected { stage, cause });
        });
    }

    /// Records a machine snapshot being serialized.
    pub fn snapshot_write(&self) {
        self.with(|s| s.metrics.bump(Counter::SnapshotWrites, 1));
    }

    /// Records a machine snapshot being deserialized.
    pub fn snapshot_read(&self) {
        self.with(|s| s.metrics.bump(Counter::SnapshotReads, 1));
    }

    /// Records a copy-on-write machine fork.
    pub fn snapshot_fork(&self) {
        self.with(|s| s.metrics.bump(Counter::SnapshotForks, 1));
    }

    /// Records a stage operation being retried after a transient fault.
    pub fn retry(&self, stage: &'static str, attempt: u64) {
        self.with(|s| {
            s.metrics.bump(Counter::TransientRetries, 1);
            s.record(Event::Retry { stage, attempt });
        });
    }

    /// Records a spray-width halving after repeated transient failures.
    pub fn spray_degraded(&self, budget: u64) {
        self.with(|s| {
            s.metrics.bump(Counter::SprayDegradations, 1);
            s.record(Event::SprayDegraded { budget });
        });
    }

    /// Marks a stage's begin; DRAM activations until the matching
    /// [`stage_end`](Self::stage_end) are attributed to it.
    pub fn stage_start(&self, stage: Stage) {
        self.with(|s| s.stage_start(stage));
    }

    /// Marks a stage's end, charging the elapsed simulated time to it.
    pub fn stage_end(&self, stage: Stage) {
        self.with(|s| s.stage_end(stage));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_tracer_is_a_noop() {
        let t = Tracer::off();
        assert!(!t.is_on());
        t.set_now(5);
        t.hammer(10, 1, 1);
        t.stage_start(Stage::Profile);
        t.stage_end(Stage::Profile);
        assert!(t.take_sink().is_none());
    }

    #[test]
    fn metrics_mode_counts_without_recording_events() {
        let t = Tracer::new(TraceMode::Metrics);
        t.set_now(100);
        t.hammer(64, 2, 3);
        t.buddy_alloc(9);
        t.buddy_split(4);
        t.ept_split(0x20_0000);
        let sink = t.take_sink().expect("attached");
        assert!(!sink.events_enabled());
        assert!(sink.events().is_empty());
        assert_eq!(sink.metrics().get(Counter::DramActivations), 64);
        assert_eq!(sink.metrics().get(Counter::DramTrrRefreshes), 2);
        assert_eq!(sink.metrics().get(Counter::DramBitFlips), 3);
        assert_eq!(sink.metrics().get(Counter::BuddyAllocs), 1);
        assert_eq!(sink.metrics().get(Counter::BuddySplits), 1);
        assert_eq!(sink.metrics().get(Counter::EptSplits), 1);
    }

    #[test]
    fn full_mode_records_time_stamped_events_in_order() {
        let t = Tracer::new(TraceMode::Full);
        t.set_now(10);
        t.viommu_map(0x1_0000_0000);
        t.set_now(20);
        t.virtio_mem_unplug(0x40_0000);
        t.vm_reboot();
        let sink = t.take_sink().expect("attached");
        let kinds: Vec<&str> = sink.events().iter().map(|e| e.event.kind()).collect();
        assert_eq!(kinds, ["viommu_map", "virtio_mem_unplug", "vm_reboot"]);
        assert_eq!(sink.events()[0].nanos, 10);
        assert_eq!(sink.events()[1].nanos, 20);
        assert_eq!(sink.metrics().get(Counter::ViommuMaps), 1);
        assert_eq!(sink.metrics().get(Counter::VmReboots), 1);
    }

    #[test]
    fn clones_share_one_sink() {
        let t = Tracer::new(TraceMode::Metrics);
        let u = t.clone();
        t.buddy_alloc(0);
        u.buddy_alloc(3);
        let sink = t.take_sink().expect("attached");
        assert_eq!(sink.metrics().get(Counter::BuddyAllocs), 2);
        // The clone now sees the emptied (taken) sink.
        let leftover = u.take_sink().expect("still attached");
        assert_eq!(leftover.metrics().get(Counter::BuddyAllocs), 0);
    }

    #[test]
    fn recycled_sink_records_identically_to_fresh() {
        // Record the same event sequence through a fresh sink and a
        // recycled one (previously dirtied with other events): the
        // taken sinks must compare equal, so arena reuse can never
        // change streamed output.
        let record = |t: &Tracer| {
            t.set_cell(7);
            t.set_now(10);
            t.stage_start(Stage::Exploit);
            t.hammer(500, 2, 1);
            t.set_now(40);
            t.stage_end(Stage::Exploit);
            t.buddy_alloc(3);
        };
        let fresh = Tracer::with_capacity(TraceMode::Full, 8);
        record(&fresh);
        let fresh_sink = fresh.take_sink().expect("attached");

        let dirty = Tracer::new(TraceMode::Full);
        dirty.set_now(999);
        dirty.vm_reboot();
        dirty.fault_injected("ept_split", "test");
        let spent = dirty.take_sink().expect("attached");
        let reused = Tracer::with_recycled(TraceMode::Full, 8, Some(spent));
        record(&reused);
        assert_eq!(reused.take_sink().expect("attached"), fresh_sink);

        // Mode switches apply on recycle too: Full -> Metrics stops
        // event recording.
        let spent = Tracer::new(TraceMode::Full).take_sink().expect("attached");
        let metrics_only = Tracer::with_recycled(TraceMode::Metrics, 0, Some(spent));
        metrics_only.buddy_alloc(0);
        let sink = metrics_only.take_sink().expect("attached");
        assert!(!sink.events_enabled() && sink.events().is_empty());
        assert_eq!(sink.metrics().get(Counter::BuddyAllocs), 1);

        // Off stays detached regardless of the recycled sink.
        assert!(!Tracer::with_recycled(TraceMode::Off, 0, None).is_on());
    }

    #[test]
    fn stages_attribute_time_and_activations() {
        let t = Tracer::new(TraceMode::Full);
        t.set_now(1_000);
        t.stage_start(Stage::Exploit);
        t.hammer(500, 0, 0);
        t.set_now(4_000);
        t.stage_end(Stage::Exploit);
        t.hammer(7, 0, 0); // outside any stage: unattributed
        let sink = t.take_sink().expect("attached");
        let m = sink.metrics();
        assert_eq!(m.stage_entries(Stage::Exploit), 1);
        assert_eq!(m.stage_nanos(Stage::Exploit), 3_000);
        assert_eq!(m.stage_activations(Stage::Exploit), 500);
        assert_eq!(m.get(Counter::DramActivations), 507);
        assert_eq!(m.stage_latency.count(), 1);
        assert!(matches!(
            sink.events().last().expect("events recorded").event,
            Event::Hammer { activations: 7, .. }
        ));
        assert!(sink.events().iter().any(|e| matches!(
            e.event,
            Event::StageEnd {
                stage: Stage::Exploit,
                nanos: 3_000
            }
        )));
    }

    #[test]
    fn mismatched_stage_end_charges_zero() {
        let t = Tracer::new(TraceMode::Metrics);
        t.set_now(9_000);
        t.stage_end(Stage::SprayEpt);
        let sink = t.take_sink().expect("attached");
        assert_eq!(sink.metrics().stage_nanos(Stage::SprayEpt), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let mut h = Histogram::default();
        h.record(0);
        h.record(3);
        h.record(3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.total(), 6);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[2], 2);
    }

    #[test]
    fn merge_is_elementwise_addition() {
        let a = Tracer::new(TraceMode::Metrics);
        a.hammer(10, 1, 0);
        a.stage_start(Stage::Profile);
        a.set_now(50);
        a.stage_end(Stage::Profile);
        let b = Tracer::new(TraceMode::Metrics);
        b.hammer(32, 0, 2);
        b.buddy_exhausted(0);

        let mut merged = a.take_sink().expect("attached").metrics().clone();
        merged.merge(b.take_sink().expect("attached").metrics());
        assert_eq!(merged.get(Counter::DramActivations), 42);
        assert_eq!(merged.get(Counter::DramHammerCalls), 2);
        assert_eq!(merged.get(Counter::DramBitFlips), 2);
        assert_eq!(merged.get(Counter::BuddyExhaustions), 1);
        assert_eq!(merged.stage_nanos(Stage::Profile), 50);
        assert_eq!(merged.hammer_activations.count(), 2);
        assert_eq!(merged.hammer_activations.total(), 42);
    }

    #[test]
    fn plan_lookups_count_but_emit_no_events() {
        let t = Tracer::new(TraceMode::Full);
        t.plan_lookup(false);
        t.plan_lookup(true);
        t.plan_lookup(true);
        let sink = t.take_sink().expect("attached");
        assert_eq!(sink.metrics().get(Counter::DramPlanCompiles), 1);
        assert_eq!(sink.metrics().get(Counter::DramPlanHits), 2);
        assert!(
            sink.events().is_empty(),
            "plan-cache bookkeeping must not perturb the event stream"
        );
    }

    #[test]
    fn capacity_hint_changes_nothing_observable() {
        let run = |t: Tracer| {
            t.set_now(7);
            t.hammer(12, 1, 1);
            t.stage_start(Stage::SprayEpt);
            t.ept_spray(44, 3);
            t.set_now(90);
            t.stage_end(Stage::SprayEpt);
            t.take_sink().expect("attached")
        };
        for mode in [TraceMode::Metrics, TraceMode::Full] {
            let plain = run(Tracer::new(mode));
            for hint in [0, 1, 4096] {
                assert_eq!(
                    run(Tracer::with_capacity(mode, hint)),
                    plain,
                    "hint {hint} perturbed a {mode:?} sink"
                );
            }
        }
        assert!(!Tracer::with_capacity(TraceMode::Off, 512).is_on());
    }

    #[test]
    fn trace_mode_parses() {
        assert_eq!(TraceMode::parse("off"), Some(TraceMode::Off));
        assert_eq!(TraceMode::parse("metrics"), Some(TraceMode::Metrics));
        assert_eq!(TraceMode::parse("full"), Some(TraceMode::Full));
        assert_eq!(TraceMode::parse("verbose"), None);
    }

    #[test]
    fn take_sink_resets_shared_state() {
        let t = Tracer::new(TraceMode::Full);
        t.vm_reboot();
        let first = t.take_sink().expect("attached");
        assert_eq!(first.metrics().get(Counter::VmReboots), 1);
        t.vm_reboot();
        let second = t.take_sink().expect("attached");
        assert_eq!(second.metrics().get(Counter::VmReboots), 1);
        // The replacement sink is a default: metrics-only recording.
        assert!(second.events().is_empty());
    }
}

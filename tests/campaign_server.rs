//! End-to-end campaign-server tests: N concurrent HTTP clients must
//! receive NDJSON byte-identical to serial `campaign --json --jobs 1`
//! runs of the same specs, and `DELETE /jobs/{id}` on a running job
//! must leave the server serving.
//!
//! Wired into the `hyperhammer-cli` package (see its `Cargo.toml`) so
//! the real CLI formatter and binary are in reach.

use std::num::NonZeroUsize;
use std::process::Command;

use hh_server::client::Client;
use hh_server::json::job_spec_to_json;
use hh_server::CampaignServer;
use hyperhammer::JobSpec;
use hyperhammer_cli::commands::campaign_cell_line;

fn spec(scenario: &str, seeds: usize, base_seed: u64) -> JobSpec {
    JobSpec {
        scenarios: vec![scenario.to_string()],
        seeds,
        base_seed,
        attempts: 2,
        bits: 4,
        ..JobSpec::default()
    }
}

/// The NDJSON bytes a serial (`--jobs 1`) run of `spec` prints.
fn serial_ndjson(spec: &JobSpec) -> String {
    let grid = spec.to_grid().expect("spec is valid");
    let results = grid
        .run(NonZeroUsize::new(1).expect("1 is non-zero"))
        .expect("serial run succeeds");
    let mut out = String::new();
    for result in &results {
        campaign_cell_line(result, &mut out);
    }
    out
}

fn start_server() -> (CampaignServer, Client) {
    let server =
        CampaignServer::start("127.0.0.1:0", campaign_cell_line).expect("bind ephemeral port");
    let client = Client::new(&server.local_addr().to_string());
    (server, client)
}

#[test]
fn concurrent_clients_get_byte_identical_ndjson() {
    let (server, _) = start_server();
    let addr = server.local_addr().to_string();

    // Two scenarios plus one faulted spec, as three concurrent clients.
    let mut faulted = spec("tiny", 2, 0xfa);
    faulted.fault_rate = 0.2;
    faulted.fault_seed = 3;
    faulted.max_retries = 1;
    let specs = [spec("tiny", 2, 0xe2e), spec("micro", 2, 0x51), faulted];

    let streams: Vec<(JobSpec, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let client = Client::new(&addr);
                    let id = client.submit(&job_spec_to_json(spec)).expect("submit");
                    let mut bytes = Vec::new();
                    client.stream(id, &mut bytes).expect("stream");
                    (spec.clone(), String::from_utf8(bytes).expect("UTF-8"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for (spec, streamed) in &streams {
        assert_eq!(
            *streamed,
            serial_ndjson(spec),
            "server stream for {:?} must equal the serial run",
            spec.scenarios
        );
    }

    server.shutdown();
    server.join();
}

#[test]
fn server_stream_matches_cli_campaign_json_output() {
    // The acceptance bar: bytes equal to the real binary's
    // `campaign --json --jobs 1` stdout, not just an in-process rerun.
    let cli = Command::new(env!("CARGO_BIN_EXE_hyperhammer-sim"))
        .args([
            "campaign",
            "--scenarios",
            "tiny",
            "--seeds",
            "2",
            "--base-seed",
            "3738", // 0xe9a
            "--attempts",
            "2",
            "--bits",
            "4",
            "--jobs",
            "1",
            "--json",
        ])
        .output()
        .expect("run hyperhammer-sim");
    assert!(cli.status.success(), "CLI campaign failed: {cli:?}");

    let (server, client) = start_server();
    let id = client
        .submit(&job_spec_to_json(&spec("tiny", 2, 0xe9a)))
        .expect("submit");
    let mut streamed = Vec::new();
    client.stream(id, &mut streamed).expect("stream");
    assert_eq!(
        String::from_utf8(streamed).expect("UTF-8"),
        String::from_utf8(cli.stdout).expect("UTF-8"),
        "server NDJSON must equal `campaign --json --jobs 1` stdout"
    );

    server.shutdown();
    server.join();
}

#[test]
fn delete_mid_run_keeps_the_server_serving() {
    let (server, client) = start_server();

    // A single-worker job with enough cells to outlive the DELETE.
    let mut long = spec("tiny", 10, 0xde1);
    long.jobs = Some(1);
    let victim = client.submit(&job_spec_to_json(&long)).expect("submit");

    // Wait until the job demonstrably made progress, then cancel.
    loop {
        let status = client.status(victim).expect("status");
        if !status.contains("\"completed\": 0") || status.contains("\"status\": \"done\"") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let response = client.cancel(victim).expect("cancel");
    assert!(response.contains("\"was\""), "got: {response}");

    // The stream of a cancelled job ends cleanly after the cells that
    // finished; every line it does carry is still byte-exact.
    let mut bytes = Vec::new();
    client.stream(victim, &mut bytes).expect("stream");
    let streamed = String::from_utf8(bytes).expect("UTF-8");
    let full = serial_ndjson(&long);
    assert!(
        full.starts_with(&streamed),
        "a cancelled stream is a grid-order prefix of the full run"
    );

    let terminal = client.status(victim).expect("status");
    assert!(
        terminal.contains("\"status\": \"cancelled\"") || terminal.contains("\"status\": \"done\""),
        "got: {terminal}"
    );

    // Leak-free: the same server keeps accepting and completing jobs
    // (every cancelled cell's host teardown ran, or this run would trip
    // the allocator's free-pages invariants).
    let after = spec("tiny", 1, 0xaf7);
    let id = client.submit(&job_spec_to_json(&after)).expect("submit");
    let mut bytes = Vec::new();
    client.stream(id, &mut bytes).expect("stream");
    assert_eq!(
        String::from_utf8(bytes).expect("UTF-8"),
        serial_ndjson(&after)
    );

    // Graceful remote shutdown: join returning proves every server
    // thread (accept loop, handlers, runner) exited.
    client.shutdown().expect("shutdown");
    server.join();
}

//! Chaos determinism (tentpole property): hostile-host fault injection
//! is part of the simulation, so a faulted campaign must stay exactly as
//! deterministic as a fault-free one — for ANY fault seed, ANY injection
//! rate and ANY worker count, results, flip journals and trace streams
//! are bit-identical to the serial reference.

use std::num::NonZeroUsize;

use hh_hv::FaultConfig;
use hh_sim::check;
use hh_trace::{Counter, TraceMode};
use hyperhammer::driver::DriverParams;
use hyperhammer::machine::Scenario;
use hyperhammer::parallel::CampaignGrid;
use hyperhammer::steering::RetryPolicy;

fn faulted_grid(
    config: FaultConfig,
    base_seed: u64,
    retry: RetryPolicy,
    max_attempts: usize,
) -> CampaignGrid {
    let params = DriverParams {
        bits_per_attempt: 4,
        stable_bits_only: true,
        retry,
        ..DriverParams::paper()
    };
    CampaignGrid::new(vec![Scenario::tiny_demo()], params, max_attempts)
        .with_faults(config)
        .with_seed_count(base_seed, 2)
        .with_trace(TraceMode::Full)
}

/// Property: for any (fault seed, rate, worker count) the faulted grid
/// equals its serial reference — `CampaignStats`, per-cell `TraceSink`
/// event streams (which carry the flip journal and every injection /
/// retry / degradation event) and counters included. Errors count too:
/// a cell that dies (e.g. profiling outliving the whole retry budget)
/// must die identically at every worker count.
#[test]
fn faulted_grids_are_jobs_invariant_for_any_seed() {
    check::cases(0xc4a0_5bad, 3, |rng| {
        let fault_seed = rng.next_u64();
        let rate = 0.01 + 0.1 * ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64);
        let jobs = 2 + (rng.next_u64() % 7) as usize;
        let config = FaultConfig::uniform(rate).with_seed(fault_seed);

        let grid = faulted_grid(config, fault_seed ^ 0x5eed, RetryPolicy::standard(), 2);
        let serial = grid.run_serial();
        let parallel = grid.run(NonZeroUsize::new(jobs).expect("jobs >= 2"));
        assert_eq!(
            serial, parallel,
            "fault seed {fault_seed:#x} rate {rate} diverged at {jobs} workers"
        );
    });
}

/// Acceptance: at the PR's reference chaos rate (5 % per choke-point
/// operation) the recovery policy absorbs the injected faults — the
/// campaign still reaches a success within the attempt budget, and the
/// injections and retries that happened show up in the trace counters.
///
/// `tiny_demo` cannot demonstrate this: its ~44-hugepage spray cannot
/// drown the host's noise floor, so it never succeeds even fault-free
/// (see `Scenario::small_attack` docs). The cell here is the smallest
/// known-succeeding configuration: `small_attack` at a host seed whose
/// fault-free campaign succeeds on attempt 7, with a fault seed whose
/// aborts land late enough for the success trajectory to survive.
#[test]
fn recovery_absorbs_reference_chaos_rate() {
    let params = DriverParams {
        retry: RetryPolicy::standard(),
        ..DriverParams::paper()
    };
    let grid = CampaignGrid::new(vec![Scenario::small_attack()], params, 10)
        .with_seeds(vec![0xd33a_1640_b27c_81fd])
        .with_faults(FaultConfig::uniform(0.05).with_seed(37))
        .with_trace(TraceMode::Full);
    let results = grid
        .run(NonZeroUsize::new(2).expect("2 is non-zero"))
        .expect("faulted grid runs");

    let cell = &results[0];
    let sink = cell.trace.as_ref().expect("tracing is on");
    assert!(
        sink.metrics().get(Counter::FaultsInjected) > 0,
        "a 5% plan must inject at least one fault"
    );
    assert!(
        sink.metrics().get(Counter::TransientRetries) > 0,
        "injected faults must be retried"
    );
    assert!(
        cell.stats.first_success().is_some(),
        "the retry policy must carry the campaign to a success"
    );
}

//! Chaos determinism (tentpole property): hostile-host fault injection
//! is part of the simulation, so a faulted campaign must stay exactly as
//! deterministic as a fault-free one — for ANY fault seed, ANY injection
//! rate and ANY worker count, results, flip journals and trace streams
//! are bit-identical to the serial reference.

use std::num::NonZeroUsize;

use hh_hv::FaultConfig;
use hh_sim::check;
use hh_trace::TraceMode;
use hyperhammer::driver::{AttemptOutcome, DriverParams};
use hyperhammer::machine::Scenario;
use hyperhammer::parallel::CampaignGrid;
use hyperhammer::steering::RetryPolicy;

fn faulted_grid(
    config: FaultConfig,
    base_seed: u64,
    retry: RetryPolicy,
    max_attempts: usize,
) -> CampaignGrid {
    let params = DriverParams {
        bits_per_attempt: 4,
        stable_bits_only: true,
        retry,
        ..DriverParams::paper()
    };
    CampaignGrid::new(vec![Scenario::tiny_demo()], params, max_attempts)
        .with_faults(config)
        .with_seed_count(base_seed, 2)
        .with_trace(TraceMode::Full)
}

/// Property: for any (fault seed, rate, worker count) the faulted grid
/// equals its serial reference — `CampaignStats`, per-cell `TraceSink`
/// event streams (which carry the flip journal and every injection /
/// retry / degradation event) and counters included. Errors count too:
/// a cell that dies (e.g. profiling outliving the whole retry budget)
/// must die identically at every worker count.
#[test]
fn faulted_grids_are_jobs_invariant_for_any_seed() {
    check::cases(0xc4a0_5bad, 3, |rng| {
        let fault_seed = rng.next_u64();
        let rate = 0.01 + 0.1 * ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64);
        let jobs = 2 + (rng.next_u64() % 7) as usize;
        let config = FaultConfig::uniform(rate).with_seed(fault_seed);

        let grid = faulted_grid(config, fault_seed ^ 0x5eed, RetryPolicy::standard(), 2);
        let serial = grid.run_serial();
        let parallel = grid.run(NonZeroUsize::new(jobs).expect("jobs >= 2"));
        assert_eq!(
            serial, parallel,
            "fault seed {fault_seed:#x} rate {rate} diverged at {jobs} workers"
        );
    });
}

/// Property: a cell's outcome is a function of its own seeds only — in
/// particular, an aborted attempt must leave no footprint (free-list
/// order included) that changes what later attempts in the cell do.
///
/// The zero-retry policy makes this observable: every injected fault
/// aborts its attempt at the first choke point, *before* the operation
/// has any side effect, so each non-aborted attempt ran internally
/// fault-free. With the abort rollback restoring the host's full free
/// state, dropping the aborted attempts from a faulted campaign must
/// therefore reproduce the fault-free campaign's attempt sequence
/// exactly — outcome, bits targeted, sub-blocks released and simulated
/// duration. (This replaces a pinned `(host seed, fault seed)`
/// acceptance pair: any seed pair must pass, not one curated survivor.)
#[test]
fn cell_outcome_is_a_function_of_its_own_seeds_only() {
    let mut aborted_total = 0usize;
    let mut compared_after_abort = 0usize;
    check::cases(0x0dd5_eed5, 6, |rng| {
        let host_seed = rng.next_u64();
        let fault_seed = rng.next_u64();
        // Low per-operation rate: an attempt makes on the order of 10⁵
        // choke-point draws, so even this aborts roughly a third of all
        // attempts while leaving most of the rest to complete.
        let rate = 3e-6;

        let reference = faulted_grid(FaultConfig::default(), host_seed, RetryPolicy::none(), 4)
            .run_serial()
            .expect("fault-free grid runs");
        let faulted = match faulted_grid(
            FaultConfig::uniform(rate).with_seed(fault_seed),
            host_seed,
            RetryPolicy::none(),
            4,
        )
        .run_serial()
        {
            Ok(results) => results,
            // Zero retries: a fault during profiling kills the cell
            // before any attempt exists. Nothing to compare.
            Err(_) => return,
        };

        for (cell, ref_cell) in faulted.iter().zip(reference.iter()) {
            assert_eq!(cell.catalog_bits, ref_cell.catalog_bits);
            let mut seen_abort = false;
            let mut completed = Vec::new();
            for attempt in &cell.stats.attempts {
                if matches!(attempt.outcome, AttemptOutcome::Aborted(_)) {
                    aborted_total += 1;
                    seen_abort = true;
                } else {
                    if seen_abort {
                        compared_after_abort += 1;
                    }
                    completed.push(attempt.clone());
                }
            }
            for (got, want) in completed.iter().zip(ref_cell.stats.attempts.iter()) {
                assert_eq!(
                    got, want,
                    "host seed {host_seed:#x} fault seed {fault_seed:#x}: a \
                     non-aborted attempt diverged from the fault-free campaign"
                );
            }
        }
    });
    assert!(
        aborted_total > 0,
        "rate/seed choice produced no aborted attempts — the property was vacuous"
    );
    assert!(
        compared_after_abort > 0,
        "no completed attempt ever followed an abort — rollback was never exercised"
    );
}

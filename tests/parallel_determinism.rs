//! The campaign engine's core guarantee (satellite of the parallel-
//! engine PR): running a grid on N workers produces results bit-identical
//! to the serial path, for every N — worker count and OS scheduling must
//! never leak into campaign statistics.

use std::num::NonZeroUsize;

use hyperhammer::driver::DriverParams;
use hyperhammer::machine::Scenario;
use hyperhammer::parallel::{parallel_map, CampaignGrid};

fn demo_grid() -> CampaignGrid {
    let params = DriverParams {
        bits_per_attempt: 4,
        stable_bits_only: true,
        ..DriverParams::paper()
    };
    CampaignGrid::new(vec![Scenario::tiny_demo()], params, 3).with_seed_count(0xd15c0, 4)
}

fn jobs(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).expect("non-zero worker count")
}

/// 2-worker and 8-worker runs must equal the serial reference,
/// `CampaignStats` and all.
#[test]
fn two_and_eight_workers_match_serial() {
    let grid = demo_grid();
    let serial = grid.run_serial().expect("serial grid runs");
    assert_eq!(serial.len(), 4, "one cell per seed");

    let two = grid.run(jobs(2)).expect("2-worker grid runs");
    let eight = grid.run(jobs(8)).expect("8-worker grid runs");
    assert_eq!(serial, two, "2 workers must not change results");
    assert_eq!(serial, eight, "8 workers must not change results");

    // The cells are genuinely distinct experiments, not copies of one:
    // distinct seeds drive distinct attempt streams.
    let seeds: Vec<u64> = serial.iter().map(|c| c.seed).collect();
    let mut deduped = seeds.clone();
    deduped.sort_unstable();
    deduped.dedup();
    assert_eq!(deduped.len(), seeds.len(), "cell seeds are distinct");
    for cell in &serial {
        assert!(!cell.stats.attempts.is_empty(), "every cell ran attempts");
    }
}

/// Re-running the same grid is reproducible run-to-run (the engine adds
/// no hidden global state).
#[test]
fn repeated_runs_are_reproducible() {
    let first = demo_grid().run(jobs(4)).expect("grid runs");
    let second = demo_grid().run(jobs(4)).expect("grid runs");
    assert_eq!(first, second);
}

/// Variant cells obey the same guarantee: a grid spanning every attack
/// variant — five distinct pipelines, including the VM-less Xen path —
/// is bit-identical across worker counts.
#[test]
fn variant_grid_matches_serial() {
    use hyperhammer::machine::AttackVariant;
    let scenarios: Vec<Scenario> = AttackVariant::ALL
        .iter()
        .map(|v| Scenario::tiny_demo().with_variant(*v))
        .collect();
    let params = DriverParams {
        bits_per_attempt: 4,
        stable_bits_only: true,
        ..DriverParams::paper()
    };
    let grid = CampaignGrid::new(scenarios, params, 2).with_seed_count(0xd15c1, 1);
    let serial = grid.run_serial().expect("serial grid runs");
    assert_eq!(serial.len(), AttackVariant::COUNT);
    for n in [2, 8] {
        let run = grid.run(jobs(n)).expect("grid runs");
        assert_eq!(serial, run, "{n} workers must not change variant cells");
    }
}

/// `parallel_map` keeps input order under worker counts both below and
/// above the item count, with work-stealing in between.
#[test]
fn parallel_map_order_is_stable() {
    let items: Vec<usize> = (0..64).collect();
    for n in [1, 2, 8, 64, 100] {
        let out = parallel_map(items.clone(), jobs(n), |i, x| {
            assert_eq!(i, x);
            x * x
        });
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }
}

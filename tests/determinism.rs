//! Reproducibility guarantees: the entire stack is a deterministic
//! function of the experiment seed.

use hyperhammer::machine::Scenario;
use hyperhammer::profile::Profiler;
use hyperhammer::steering::PageSteering;

/// Same seed ⇒ identical profiling results, bit for bit.
#[test]
fn profiling_is_deterministic() {
    let run = |seed: u64| {
        let sc = Scenario::tiny_demo().with_seed(seed);
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        let report = Profiler::new(sc.profile_params())
            .run(&mut host, &mut vm)
            .unwrap();
        (report.bits, report.duration)
    };
    let (bits_a, dur_a) = run(1234);
    let (bits_b, dur_b) = run(1234);
    assert_eq!(bits_a, bits_b);
    assert_eq!(dur_a, dur_b);
}

/// Different seeds ⇒ different vulnerability profiles.
#[test]
fn different_seeds_differ() {
    let run = |seed: u64| {
        let sc = Scenario::tiny_demo().with_seed(seed);
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        Profiler::new(sc.profile_params())
            .run(&mut host, &mut vm)
            .unwrap()
            .bits
    };
    assert_ne!(run(1), run(2));
}

/// Steering's noise curve is deterministic too (it feeds Figure 3).
#[test]
fn noise_curve_is_deterministic() {
    let run = || {
        let sc = Scenario::tiny_demo();
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        PageSteering::new(sc.steering_params())
            .exhaust_noise(&mut host, &mut vm)
            .unwrap()
    };
    assert_eq!(run(), run());
}

/// Simulated time is part of the determinism contract: repeated boots of
/// the same scenario agree on every clock reading.
#[test]
fn simulated_clock_is_deterministic() {
    let run = || {
        let sc = Scenario::tiny_demo();
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        let steering = PageSteering::new(sc.steering_params());
        steering.exhaust_noise(&mut host, &mut vm).unwrap();
        steering.spray_ept(&mut host, &mut vm, 16 << 21).unwrap();
        host.now()
    };
    assert_eq!(run(), run());
}

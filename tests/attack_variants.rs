//! Attack-variant matrix (satellite of the variant-sweep PR): every
//! variant of the campaign engine — balloon steering, the Xen
//! comparison, PThammer's walker-charged activations, GbHammer's
//! permission-bit flips — must behave like a first-class cell: correct
//! outcome shapes, deterministic across worker counts, and rebuildable
//! from the `name@variant` spec strings that checkpoints and server
//! jobs carry.

use std::num::NonZeroUsize;

use hh_trace::{Stage, TraceMode};
use hyperhammer::driver::{AttemptOutcome, DriverParams};
use hyperhammer::machine::{AttackVariant, Scenario};
use hyperhammer::parallel::CampaignGrid;
use hyperhammer::JobSpec;

fn params() -> DriverParams {
    DriverParams {
        bits_per_attempt: 4,
        stable_bits_only: true,
        ..DriverParams::paper()
    }
}

fn jobs(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).expect("non-zero worker count")
}

/// One cell per attack variant over the cheapest scenario.
fn variant_grid(trace: TraceMode) -> CampaignGrid {
    let scenarios: Vec<Scenario> = AttackVariant::ALL
        .iter()
        .map(|v| Scenario::micro_demo().with_variant(*v))
        .collect();
    CampaignGrid::new(scenarios, params(), 3)
        .with_seed_count(0xa77a, 1)
        .with_trace(trace)
}

/// The five-variant grid is bit-identical across 1, 2 and 8 workers —
/// the property the variant-matrix CI stage byte-compares end to end.
#[test]
fn variant_grid_is_deterministic_across_worker_counts() {
    let grid = variant_grid(TraceMode::Off);
    let serial = grid.run_serial().expect("serial grid runs");
    assert_eq!(serial.len(), AttackVariant::COUNT, "one cell per variant");
    let got: Vec<AttackVariant> = serial.iter().map(|c| c.variant).collect();
    assert_eq!(got, AttackVariant::ALL, "cells come back variant-major");
    for n in [1usize, 2, 8] {
        let run = grid.run(jobs(n)).expect("grid runs");
        assert_eq!(serial, run, "{n} workers must not change variant cells");
    }
}

/// Balloon steering is deterministic run-to-run and routes through the
/// dedicated pipeline stage (no noise exhaustion, per-page release).
#[test]
fn balloon_cells_are_deterministic_and_staged() {
    let grid = |trace| {
        CampaignGrid::new(
            // tiny, not micro: the balloon stage only runs once the
            // catalogue holds usable bits, and micro's is empty.
            vec![Scenario::tiny_demo().with_variant(AttackVariant::Balloon)],
            params(),
            2,
        )
        .with_seed_count(0xba11, 2)
        .with_trace(trace)
    };
    let first = grid(TraceMode::Off).run(jobs(2)).expect("grid runs");
    let second = grid(TraceMode::Off).run(jobs(2)).expect("grid runs");
    assert_eq!(first, second, "balloon placement must be deterministic");

    let traced = grid(TraceMode::Full).run_serial().expect("traced runs");
    for cell in &traced {
        let sink = cell.trace.as_ref().expect("traced cell has a sink");
        let stages: Vec<Stage> = sink
            .events()
            .iter()
            .filter_map(|e| match e.event {
                hh_trace::Event::StageStart { stage } => Some(stage),
                _ => None,
            })
            .collect();
        assert!(
            stages.contains(&Stage::BalloonSteer),
            "balloon cells must pass through Stage::BalloonSteer"
        );
        assert!(
            !stages.contains(&Stage::ExhaustNoise),
            "balloon steering needs no noise exhaustion (PCP LIFO lands it)"
        );
    }
}

/// Xen cells report reuse statistics: every attempt ends `Steered`,
/// success means at least one released page came back, and the stats
/// are internally consistent.
#[test]
fn xen_cells_report_reuse_stats() {
    let grid = CampaignGrid::new(
        vec![Scenario::micro_demo().with_variant(AttackVariant::Xen)],
        params(),
        3,
    )
    .with_seed_count(0x7e4, 2);
    let results = grid.run_serial().expect("xen grid runs");
    for cell in &results {
        assert!(!cell.stats.attempts.is_empty(), "xen cells run attempts");
        for attempt in &cell.stats.attempts {
            match attempt.outcome {
                AttemptOutcome::Steered {
                    released,
                    p2m_pages,
                    reused,
                } => {
                    assert!(released > 0, "the experiment releases pages");
                    assert!(p2m_pages > 0, "the domain has a P2M");
                    assert_eq!(
                        attempt.outcome.is_success(),
                        reused > 0,
                        "xen success is defined as reuse of a released page"
                    );
                }
                ref other => panic!("xen attempts must end Steered, got {other:?}"),
            }
        }
    }
}

/// GbHammer succeeds through PTE permission-bit corruption — a payload
/// distinct from the address-translation escape of the default path.
#[test]
fn gbhammer_cells_corrupt_ptes_not_translations() {
    let grid = CampaignGrid::new(
        vec![Scenario::tiny_demo().with_variant(AttackVariant::GbHammer)],
        params(),
        4,
    )
    .with_seed_count(0x6b, 3);
    let results = grid.run_serial().expect("gbhammer grid runs");
    let outcomes: Vec<&AttemptOutcome> = results
        .iter()
        .flat_map(|c| c.stats.attempts.iter().map(|a| &a.outcome))
        .collect();
    assert!(
        !outcomes.is_empty(),
        "gbhammer cells must have run attempts"
    );
    for outcome in &outcomes {
        assert!(
            !matches!(outcome, AttemptOutcome::Success(_)),
            "gbhammer never produces the translation-escape payload"
        );
    }
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, AttemptOutcome::PteCorrupted(_))),
        "at least one attempt should flip a PTE control bit at these seeds"
    );
}

/// PThammer charges activations through EPT-walker fetches, so its
/// cells diverge from the default variant at identical seeds while
/// remaining deterministic themselves. The wall clock is the same by
/// construction (the flush-and-walk cycle burns the full round budget),
/// so the divergence shows up in the traced DRAM activity: a quarter of
/// the hammer rounds means a lower flip yield.
#[test]
fn pthammer_diverges_from_default_but_stays_deterministic() {
    let cell = |variant| {
        CampaignGrid::new(
            vec![Scenario::tiny_demo().with_variant(variant)],
            params(),
            2,
        )
        .with_seed_count(0x971, 1)
        .with_trace(TraceMode::Full)
        .run_serial()
        .expect("grid runs")
    };
    let pt_a = cell(AttackVariant::PtHammer);
    let pt_b = cell(AttackVariant::PtHammer);
    assert_eq!(pt_a, pt_b, "pthammer cells are reproducible");
    let default = cell(AttackVariant::VirtioMem);
    assert_eq!(default[0].scenario, pt_a[0].scenario);
    assert_eq!(default[0].seed, pt_a[0].seed);
    assert_ne!(
        default, pt_a,
        "walker-charged hammering must change the traced DRAM activity"
    );
}

/// The `name@variant` spec strings round-trip through [`JobSpec`] — the
/// encoding checkpoints and server jobs persist — and rebuild cells of
/// the right variant in the right order.
#[test]
fn job_spec_round_trips_variant_scenarios() {
    let spec = JobSpec {
        scenarios: vec![
            "micro@balloon".to_string(),
            "micro".to_string(),
            "tiny@xen".to_string(),
        ],
        seeds: 2,
        base_seed: 0xcafe,
        attempts: 2,
        bits: 4,
        ..JobSpec::default()
    };
    let grid = spec.to_grid().expect("variant spec builds a grid");
    assert_eq!(grid.len(), 6, "3 scenarios x 2 seeds");
    let variants: Vec<AttackVariant> = grid.scenarios().iter().map(Scenario::variant).collect();
    assert_eq!(
        variants,
        vec![
            AttackVariant::Balloon,
            AttackVariant::VirtioMem,
            AttackVariant::Xen
        ]
    );
    // lookup_name is the inverse encoding: feeding it back reproduces
    // the spec strings exactly (default variant stays bare).
    let names: Vec<String> = grid.scenarios().iter().map(Scenario::lookup_name).collect();
    assert_eq!(names, spec.scenarios);
}

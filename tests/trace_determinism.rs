//! hh-trace across the full stack (satellite of the tracing PR): the
//! merged event stream and metric totals of a traced campaign must be
//! byte-identical for every worker count, and turning event recording
//! off must not change the aggregate counters.

use std::num::NonZeroUsize;

use hh_trace::{Counter, Metrics, Stage, TraceMode, TraceSink};
use hyperhammer::driver::DriverParams;
use hyperhammer::machine::Scenario;
use hyperhammer::parallel::{CampaignGrid, CellResult};
use hyperhammer_cli::output::{to_json_line, TraceEventOut};

fn demo_grid(mode: TraceMode) -> CampaignGrid {
    let params = DriverParams {
        bits_per_attempt: 4,
        stable_bits_only: true,
        ..DriverParams::paper()
    };
    CampaignGrid::new(vec![Scenario::tiny_demo()], params, 2)
        .with_seed_count(0x7ace, 4)
        .with_trace(mode)
}

fn jobs(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).expect("non-zero worker count")
}

/// Renders the merged NDJSON stream exactly as `campaign --trace` writes
/// it: cells in grid order, each event stamped with its cell index.
fn ndjson(results: &[CellResult]) -> String {
    let mut out = String::new();
    for result in results {
        let sink = result.trace.as_ref().expect("traced cell has a sink");
        for event in sink.events() {
            out.push_str(&to_json_line(&TraceEventOut {
                cell: sink.cell(),
                event: *event,
            }));
            out.push('\n');
        }
    }
    out
}

fn merged_metrics(results: &[CellResult]) -> Metrics {
    let mut merged = Metrics::default();
    for result in results {
        merged.merge(result.trace.as_ref().expect("sink").metrics());
    }
    merged
}

/// The headline guarantee: a 4-worker traced campaign produces an NDJSON
/// stream and metric totals byte-identical to the serial reference.
#[test]
fn four_workers_match_serial_byte_for_byte() {
    let grid = demo_grid(TraceMode::Full);
    let serial = grid.run_serial().expect("serial grid runs");
    let four = grid.run(jobs(4)).expect("4-worker grid runs");

    let serial_stream = ndjson(&serial);
    assert!(!serial_stream.is_empty(), "traced run recorded events");
    assert_eq!(
        serial_stream,
        ndjson(&four),
        "4-worker NDJSON must be byte-identical to serial"
    );
    assert_eq!(
        merged_metrics(&serial),
        merged_metrics(&four),
        "metric totals must not depend on worker count"
    );

    // Cell indices cover the grid and arrive in grid order.
    let cells: Vec<usize> = serial
        .iter()
        .map(|r| r.trace.as_ref().expect("sink").cell())
        .collect();
    assert_eq!(cells, vec![0, 1, 2, 3]);
}

/// A tiny campaign drives every instrumented layer: the acceptance
/// counters of the tracing PR must all be nonzero.
#[test]
fn tiny_campaign_populates_acceptance_counters() {
    let results = demo_grid(TraceMode::Metrics)
        .run(jobs(2))
        .expect("grid runs");
    let merged = merged_metrics(&results);
    for counter in [
        Counter::DramActivations,
        Counter::DramTrrRefreshes,
        Counter::BuddySplits,
        Counter::EptSplits,
    ] {
        assert!(
            merged.get(counter) > 0,
            "{} should be nonzero on a tiny campaign",
            counter.name()
        );
    }
    // Every attempt walks the full default pipeline, so each of its
    // stages was entered and simulated time accumulated somewhere. The
    // balloon/Xen steering stages belong to other attack variants'
    // pipelines and are covered by variant cells below.
    for stage in Stage::ALL {
        if matches!(stage, Stage::BalloonSteer | Stage::XenSteer) {
            continue;
        }
        assert!(
            merged.stage_entries(stage) > 0,
            "stage {} was never entered",
            stage.name()
        );
    }
    assert!(merged.stage_nanos(Stage::Profile) > 0);
    assert!(merged.stage_activations(Stage::Profile) > 0);

    // One balloon and one Xen cell light up the variant-specific stages.
    use hyperhammer::machine::AttackVariant;
    let params = DriverParams {
        bits_per_attempt: 4,
        stable_bits_only: true,
        ..DriverParams::paper()
    };
    let variant_grid = CampaignGrid::new(
        vec![
            Scenario::tiny_demo().with_variant(AttackVariant::Balloon),
            Scenario::tiny_demo().with_variant(AttackVariant::Xen),
        ],
        params,
        2,
    )
    .with_seed_count(0x7ace, 1)
    .with_trace(TraceMode::Metrics);
    let merged = merged_metrics(&variant_grid.run(jobs(2)).expect("variant grid runs"));
    for stage in [Stage::BalloonSteer, Stage::XenSteer] {
        assert!(
            merged.stage_entries(stage) > 0,
            "variant stage {} was never entered",
            stage.name()
        );
    }
}

/// Turning event recording off (metrics-only mode) leaves the aggregate
/// counters untouched — metrics never depend on the event stream.
#[test]
fn metrics_mode_counts_exactly_like_full_mode() {
    let full = demo_grid(TraceMode::Full).run(jobs(2)).expect("grid runs");
    let metrics_only = demo_grid(TraceMode::Metrics)
        .run(jobs(2))
        .expect("grid runs");

    for result in &metrics_only {
        let sink: &TraceSink = result.trace.as_ref().expect("sink");
        assert!(!sink.events_enabled());
        assert!(sink.events().is_empty(), "metrics mode records no events");
    }
    assert_eq!(
        merged_metrics(&full),
        merged_metrics(&metrics_only),
        "disabling event recording must not change the counters"
    );
}

/// `TraceMode::Off` costs nothing and returns no sinks at all.
#[test]
fn off_mode_returns_no_sinks() {
    let results = demo_grid(TraceMode::Off).run(jobs(2)).expect("grid runs");
    assert!(results.iter().all(|r| r.trace.is_none()));
}

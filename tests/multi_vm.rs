//! Co-resident VM tests: the Flip-Feng-Shui-style setting the paper
//! generalizes away from (§3: "unlike Flip Feng Shui, we do not assume
//! the existence of a co-resident victim VM") — but the substrate
//! supports it, and §4.3 relies on facts about it: a flipped EPTE
//! pointing at *another* VM's EPT page changes that VM's mappings
//! without giving the attacker access.

use hh_hv::{Host, HostConfig, VmConfig};
use hh_sim::addr::{Gpa, HUGE_PAGE_SIZE};
use hyperhammer::exploit::{ExploitParams, Exploiter};
use hyperhammer::machine::Scenario;
use hyperhammer::steering::PageSteering;

#[test]
fn two_vms_coexist_with_isolated_memory() {
    let mut host = Host::new(HostConfig::small_test());
    let mut a = host.create_vm(VmConfig::small_test()).unwrap();
    let mut b = host.create_vm(VmConfig::small_test()).unwrap();
    assert_ne!(a.id(), b.id());

    a.write_gpa(&mut host, Gpa::new(0x1000), &[0xaa]).unwrap();
    b.write_gpa(&mut host, Gpa::new(0x1000), &[0xbb]).unwrap();
    // Same GPA, different HPAs, different contents.
    assert_eq!(a.read_gpa(&host, Gpa::new(0x1000), 1).unwrap(), vec![0xaa]);
    assert_eq!(b.read_gpa(&host, Gpa::new(0x1000), 1).unwrap(), vec![0xbb]);
    let hpa_a = a.translate_gpa(&host, Gpa::new(0x1000)).unwrap().hpa;
    let hpa_b = b.translate_gpa(&host, Gpa::new(0x1000)).unwrap().hpa;
    assert_ne!(hpa_a, hpa_b);

    a.destroy(&mut host);
    b.destroy(&mut host);
}

#[test]
fn cross_vm_rowhammer_corrupts_the_neighbour() {
    // Razavi-style collateral: hammering in VM A flips bits in VM B's
    // memory when their backings are row-adjacent.
    let mut host = Host::new(HostConfig::small_test());
    let mut a = host.create_vm(VmConfig::small_test()).unwrap();
    let mut b = host.create_vm(VmConfig::small_test()).unwrap();

    let total = a.config().total_mem().bytes();
    a.fill_gpa(&mut host, Gpa::new(0), total, 0xff).unwrap();
    b.fill_gpa(&mut host, Gpa::new(0), total, 0xff).unwrap();

    // A hammers the borders of every one of its hugepages.
    let cursor_b = b.journal_cursor(&host);
    // Same-bank pairs covering all 32 bank classes of the S1 function
    // (bank bits come from offsets' bits 6, 14, 15, 16, 17); the row-bit
    // contribution f(2^18) is cancelled by toggling bit 14. Hammer both
    // hugepage borders so the victims include the *next* VM's rows.
    let class_offset = |b: u64| {
        ((b & 1) << 6)
            | ((b >> 1 & 1) << 14)
            | ((b >> 2 & 1) << 15)
            | ((b >> 3 & 1) << 16)
            | ((b >> 4 & 1) << 17)
    };
    let mut offsets: Vec<(u64, u64)> = Vec::new();
    for b in 0..32u64 {
        let o1 = class_offset(b);
        // Top border: rows 0 and 1.
        offsets.push((o1, (1u64 << 18) | (o1 ^ (1 << 14))));
        // Bottom border: rows 6 and 7.
        offsets.push(((6 << 18) | o1, (7 << 18) | (o1 ^ (1 << 14))));
    }
    for chunk in 0..total / HUGE_PAGE_SIZE {
        for &(o1, o2) in &offsets {
            let base = Gpa::new(chunk * HUGE_PAGE_SIZE);
            a.hammer_gpa(&mut host, &[base.add(o1), base.add(o2)], 450_000)
                .unwrap();
        }
    }
    // B scans *its own* memory and finds collateral flips.
    let flips_in_b = b.scan_for_flips(&mut host, cursor_b, Gpa::new(0), total);
    assert!(
        !flips_in_b.is_empty(),
        "dense DIMM + adjacent backings must produce cross-VM flips"
    );
    a.destroy(&mut host);
    b.destroy(&mut host);
}

#[test]
fn flip_into_other_vms_ept_is_not_exploitable() {
    // §4.3: "the attacker can change other VMs, but not access the
    // modified mappings" — live validation must reject an EPT page that
    // belongs to a different VM.
    let scenario = Scenario::small_attack();
    let mut host = scenario.boot_host();
    let mut attacker = host.create_vm(scenario.vm_config()).unwrap();
    let mut victim = host.create_vm(VmConfig::small_test()).unwrap();

    let exploiter = Exploiter::new(ExploitParams::paper());
    let steering = PageSteering::new(scenario.steering_params());
    exploiter.stamp_magic(&mut host, &mut attacker).unwrap();
    steering
        .spray_ept(&mut host, &mut attacker, 16 << 21)
        .unwrap();

    // Give the victim VM an EPT leaf page too.
    victim.exec_gpa(&mut host, Gpa::new(0)).unwrap();
    let victim_ept = victim.ept_leaf_pages(&host)[0];

    // Forge the attacker's flip to point at the *victim's* EPT page.
    let corrupted = Gpa::new(0x3000);
    let entry_hpa = attacker.leaf_epte_hpa(&host, corrupted).unwrap();
    let raw = host.dram().store().read_u64(entry_hpa);
    let pfn_mask = ((1u64 << 48) - 1) & !0xfff;
    host.dram_mut()
        .store_mut()
        .write_u64(entry_hpa, raw & !pfn_mask | (victim_ept.index() << 12));

    // It *looks* like an EPT page (it is one)...
    assert!(exploiter.looks_like_ept_page(&host, &attacker, corrupted));
    // ...but live validation fails: rewriting its entries changes the
    // victim's address space, which the attacker cannot observe.
    let proof = exploiter
        .validate_and_escape(
            &mut host,
            &mut attacker,
            corrupted,
            &[corrupted],
            hh_sim::Hpa::new(0x1000),
        )
        .unwrap();
    assert!(proof.is_none(), "cross-VM EPT page must fail validation");

    // The probe slots were restored after each failed validation, so the
    // victim's address space survives the attempt intact — but only
    // because this exploiter restores; a §4.3 attacker that stops after
    // the flip leaves the victim silently corrupted.
    for i in 0..8u64 {
        let gpa = Gpa::new(i * 4096);
        let t = victim
            .translate_gpa(&host, gpa)
            .expect("victim mapping intact");
        assert_eq!(t.hpa, victim.hypercall_gpa_to_hpa(gpa).unwrap());
    }

    attacker.destroy(&mut host);
    victim.destroy(&mut host);
}

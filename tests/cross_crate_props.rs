//! Property-based tests on cross-crate invariants, driven by the
//! deterministic `hh_sim::check` harness.

use hh_buddy::{AllocError, BuddyAllocator, MigrateType};
use hh_dram::geometry::{BankFunction, DramGeometry};
use hh_dram::store::SparseStore;
use hh_hv::ept::Epte;
use hh_hv::{Host, HostConfig, VmConfig};
use hh_sim::addr::{Gpa, Hpa, Pfn, HUGE_PAGE_SIZE, PAGE_SIZE};
use hh_sim::check;

/// The buddy allocator conserves pages under arbitrary alloc/free
/// interleavings and never hands out overlapping blocks.
#[test]
fn buddy_conservation_and_disjointness() {
    check::cases(0xcc01, 64, |rng| {
        let ops = check::vec_of(rng, 1, 120, |r| {
            (
                r.gen_range(0u8..10),
                r.gen_bool(0.5),
                r.gen_range(0u64..256) as u8,
            )
        });
        let total = 16u64 << 20 >> 12; // 16 MiB zone
        let mut buddy = BuddyAllocator::new(total);
        let mut held: Vec<(Pfn, u8)> = Vec::new();
        for (order, unmovable, action) in ops {
            if action % 3 != 0 || held.is_empty() {
                let mt = if unmovable {
                    MigrateType::Unmovable
                } else {
                    MigrateType::Movable
                };
                match buddy.alloc(order, mt) {
                    Ok(base) => {
                        // No overlap with anything currently held.
                        let lo = base.index();
                        let hi = lo + (1u64 << order);
                        for &(other, oorder) in &held {
                            let olo = other.index();
                            let ohi = olo + (1u64 << oorder);
                            assert!(
                                hi <= olo || ohi <= lo,
                                "overlap: [{lo},{hi}) vs [{olo},{ohi})"
                            );
                        }
                        assert_eq!(lo % (1 << order), 0, "alignment");
                        held.push((base, order));
                    }
                    Err(AllocError::OutOfMemory { .. }) => {}
                    Err(e) => panic!("unexpected error {e}"),
                }
            } else {
                let idx = usize::from(action) % held.len();
                let (base, order) = held.swap_remove(idx);
                buddy.free(base, order);
            }
            let held_pages: u64 = held.iter().map(|&(_, o)| 1u64 << o).sum();
            assert_eq!(buddy.free_pages() + held_pages, total, "conservation");
        }
        for (base, order) in held {
            buddy.free(base, order);
        }
        assert_eq!(buddy.free_pages(), total);
    });
}

/// XOR bank functions are linear and map every address to a valid
/// bank; the row/bank decomposition is consistent with slice
/// enumeration.
#[test]
fn bank_function_linearity() {
    check::cases(0xcc02, check::DEFAULT_CASES, |rng| {
        let a = rng.gen_range(0u64..1 << 30);
        let b = rng.gen_range(0u64..1 << 30);
        for f in [BankFunction::core_i3_10100(), BankFunction::xeon_e2124()] {
            assert!(f.bank_of(a) < f.bank_count());
            assert_eq!(f.bank_of(a) ^ f.bank_of(b), f.bank_of(a ^ b));
        }
    });
}

/// Every address belongs to exactly the (bank, row) slice the
/// geometry attributes to it.
#[test]
fn geometry_slice_membership() {
    check::cases(0xcc03, 64, |rng| {
        let addr = rng.gen_range(0u64..64 << 20) & !63;
        let g = DramGeometry::new(BankFunction::core_i3_10100(), 64 << 20);
        let hpa = Hpa::new(addr);
        let (bank, row) = (g.bank_of(hpa), g.row_of(hpa));
        assert!(g.slice_addrs(bank, row).any(|x| x == hpa));
    });
}

/// The sparse store is byte-accurate under arbitrary write sequences
/// against a reference model.
#[test]
fn sparse_store_matches_reference() {
    check::cases(0xcc04, 64, |rng| {
        let writes = check::vec_of(rng, 1, 200, |r| {
            (r.gen_range(0u64..0x4000), r.gen_range(0u64..256) as u8)
        });
        let mut store = SparseStore::new(0x4000);
        let mut reference = vec![0u8; 0x4000];
        for (addr, value) in writes {
            store.write_u8(Hpa::new(addr), value);
            reference[addr as usize] = value;
        }
        for (i, &expected) in reference.iter().enumerate() {
            assert_eq!(store.read_u8(Hpa::new(i as u64)), expected);
        }
    });
}

/// EPTE encode/decode round-trips for every PFN and permission
/// combination.
#[test]
fn epte_roundtrip() {
    check::cases(0xcc05, check::DEFAULT_CASES, |rng| {
        let pfn = rng.gen_range(0u64..1 << 36);
        let exec = rng.gen_bool(0.5);
        let e = Epte::leaf(Pfn::new(pfn), exec);
        assert_eq!(e.pfn(), Pfn::new(pfn));
        assert_eq!(e.is_executable(), exec);
        assert!(e.is_present());
        assert!(!e.is_large());
        let moved = e.with_pfn(Pfn::new(pfn ^ 0x5555));
        assert_eq!(moved.pfn(), Pfn::new(pfn ^ 0x5555));
        assert_eq!(moved.is_executable(), exec);
    });
}

/// Guest reads always return what was last written through the same
/// GPA, across 4 KiB and 2 MiB mappings and after splits.
#[test]
fn guest_memory_write_read_consistency() {
    check::cases(0xcc06, 24, |rng| {
        let offsets = check::vec_of(rng, 1, 24, |r| r.gen_range(0u64..4 << 20));
        let split = rng.gen_bool(0.5);
        let mut host = Host::new(HostConfig::small_test());
        let mut vm = host.create_vm(VmConfig::small_test()).unwrap();
        if split {
            vm.exec_gpa(&mut host, Gpa::new(0)).unwrap();
            vm.exec_gpa(&mut host, Gpa::new(HUGE_PAGE_SIZE)).unwrap();
        }
        for (i, &off) in offsets.iter().enumerate() {
            let gpa = Gpa::new(off);
            vm.write_gpa(&mut host, gpa, &[i as u8]).unwrap();
            assert_eq!(vm.read_gpa(&host, gpa, 1).unwrap()[0], i as u8);
        }
        vm.destroy(&mut host);
    });
}

/// Low-21-bit preservation holds for arbitrary probe offsets in a
/// THP-backed VM (the §4.1 premise).
#[test]
fn thp_bit_preservation() {
    check::cases(0xcc07, 32, |rng| {
        let off = rng.gen_range(0u64..36 << 20);
        let mut host = Host::new(HostConfig::small_test());
        let vm = host.create_vm(VmConfig::small_test()).unwrap();
        let gpa = Gpa::new(off);
        let hpa = vm.translate_gpa(&host, gpa).unwrap().hpa;
        assert_eq!(gpa.raw() & ((1 << 21) - 1), hpa.raw() & ((1 << 21) - 1));
        assert_eq!(hpa.page_offset(), gpa.page_offset());
        let _ = PAGE_SIZE;
    });
}

//! Failure injection: every layer must fail loudly and recoverably when
//! resources run out or preconditions vanish.

use hh_buddy::AllocError;
use hh_dram::fault::FaultParams;
use hh_dram::DimmProfile;
use hh_hv::{FaultConfig, Host, HostConfig, HvError, VmConfig};
use hh_sim::addr::{HUGE_PAGE_SIZE, PAGE_SIZE};
use hh_sim::{ByteSize, Gpa, Iova};
use hyperhammer::driver::{AttackDriver, AttemptOutcome, DriverParams};
use hyperhammer::machine::Scenario;
use hyperhammer::profile::{FlipCatalog, Profiler};
use hyperhammer::steering::{PageSteering, RetryPolicy, SteeringParams};

/// A host too small for the requested VM: creation fails with OOM and
/// leaks nothing.
#[test]
fn vm_creation_oom_is_clean() {
    let mut cfg = HostConfig::small_test();
    cfg.dimm = DimmProfile::test_profile(32 << 20); // 32 MiB host
    let mut host = Host::new(cfg);
    let free_before = host.buddy().free_pages();
    let result = host.create_vm(VmConfig {
        boot_mem: ByteSize::mib(16),
        virtio_mem: ByteSize::mib(64), // cannot fit
        ..VmConfig::small_test()
    });
    match result {
        Err(HvError::OutOfHostMemory(AllocError::OutOfMemory { .. })) => {}
        other => panic!("expected OOM, got {other:?}"),
    }
    // The constructor rolls the partial VM back: nothing leaks.
    assert_eq!(host.buddy().free_pages(), free_before);
    let vm = host.create_vm(VmConfig {
        boot_mem: ByteSize::mib(4),
        virtio_mem: ByteSize::mib(8),
        ..VmConfig::small_test()
    });
    assert!(
        vm.is_ok(),
        "host must remain usable after a failed creation"
    );
}

/// A DIMM with zero vulnerable cells: profiling completes and finds
/// nothing; the campaign reports NoUsableBits instead of diverging.
#[test]
fn invulnerable_dimm_yields_empty_profile_and_clean_campaign() {
    let mut sc = Scenario::tiny_demo();
    let mut host_cfg = sc.host_config().clone();
    host_cfg.dimm.fault = FaultParams {
        cells_per_row: 0.0,
        ..FaultParams::dense_test()
    };
    sc = sc.with_host_config(host_cfg);

    let mut host = sc.boot_host();
    let mut vm = host.create_vm(sc.vm_config()).unwrap();
    let profiler = Profiler::new(sc.profile_params());
    let report = profiler.run(&mut host, &mut vm).unwrap();
    assert_eq!(report.total(), 0, "no cells, no flips");
    let catalog = profiler.to_catalog(&vm, &report).unwrap();
    assert!(catalog.entries.is_empty());
    vm.destroy(&mut host);

    let driver = AttackDriver::new(DriverParams::paper());
    let stats = driver.campaign(&sc, &mut host, &catalog, 2).unwrap();
    assert!(stats
        .attempts
        .iter()
        .all(|a| a.outcome == AttemptOutcome::NoUsableBits));
}

/// The vIOMMU mapping limit stops exhaustion gracefully mid-way.
#[test]
fn exhaustion_survives_the_mapping_limit() {
    let sc = Scenario::tiny_demo();
    let mut host = sc.boot_host();
    let mut vm = host.create_vm(sc.vm_config()).unwrap();
    // Pre-consume the whole mapping budget with direct mappings. Pack
    // them 4 KiB apart so the cap is reached with only ~128 IOPT pages
    // (one per 2 MiB window) instead of draining the tiny host's pool.
    let mut mapped = 0u64;
    loop {
        let iova = Iova::new(0x100_0000_0000 + mapped * PAGE_SIZE);
        match vm.iommu_map(&mut host, 0, iova, Gpa::new(0)) {
            Ok(()) => mapped += 1,
            Err(HvError::IommuMapLimit) => break,
            Err(e) => panic!("unexpected {e}"),
        }
        if mapped >= 65_535 {
            break;
        }
    }
    // Steering's exhaustion hits the limit immediately and returns Ok.
    let steering = PageSteering::new(SteeringParams {
        iova_mappings: 1_000,
        ..sc.steering_params()
    });
    let samples = steering.exhaust_noise(&mut host, &mut vm).unwrap();
    assert!(!samples.is_empty());
}

/// Spraying with a zero budget is a no-op; spraying more than exists
/// stops at the end of memory.
#[test]
fn spray_budget_edges() {
    let sc = Scenario::tiny_demo();
    let mut host = sc.boot_host();
    let mut vm = host.create_vm(sc.vm_config()).unwrap();
    let steering = PageSteering::new(sc.steering_params());
    let zero = steering.spray_ept(&mut host, &mut vm, 0).unwrap();
    assert_eq!(zero.hugepages_executed, 0);
    let all = steering
        .spray_ept(&mut host, &mut vm, u64::MAX >> 1)
        .unwrap();
    assert_eq!(
        all.hugepages_executed,
        vm.config().total_mem().bytes() / HUGE_PAGE_SIZE
    );
}

/// A catalogue from one machine applied to a different host geometry
/// relocates nothing (frames don't exist) instead of corrupting state.
#[test]
fn cross_machine_catalog_is_rejected_by_relocation() {
    let sc = Scenario::tiny_demo();
    let mut host = sc.boot_host();
    let vm = host.create_vm(sc.vm_config()).unwrap();
    let alien = FlipCatalog {
        entries: vec![hyperhammer::profile::CatalogEntry {
            cell_hpa: hh_sim::Hpa::new(1 << 40), // beyond any tiny host
            bit: 3,
            direction: hh_dram::FlipDirection::OneToZero,
            aggressor_hugepage_hpa: hh_sim::Hpa::new(1 << 41),
            aggressor_offsets: [0, 64],
            stable: true,
        }],
        host_mem: ByteSize::gib(16),
    };
    let driver = AttackDriver::new(DriverParams::paper());
    assert!(driver.relocate(&vm, &alien).is_empty());
}

/// Host remains balanced after an attempt that errors mid-way (the
/// quarantine NACK path destroys the VM and frees everything).
#[test]
fn failed_attempt_under_quarantine_leaks_nothing() {
    let open = Scenario::tiny_demo();
    let mut host = open.boot_host();
    let mut vm = host.create_vm(open.vm_config()).unwrap();
    let profiler = Profiler::new(open.profile_params());
    let report = profiler.run(&mut host, &mut vm).unwrap();
    let catalog = profiler.to_catalog(&vm, &report).unwrap();
    vm.destroy(&mut host);
    if catalog.entries.is_empty() {
        return;
    }

    let hardened = Scenario::tiny_demo().with_quarantine();
    let mut host = hardened.boot_host();
    let free_before = host.buddy().free_pages();
    let vm = host.create_vm(hardened.vm_config()).unwrap();
    let driver = AttackDriver::new(DriverParams {
        bits_per_attempt: 2,
        ..DriverParams::paper()
    });
    let result = driver.run_attempt(&mut host, vm, &catalog, hh_sim::Hpa::new(0));
    assert!(result.is_err(), "quarantine must abort the attempt");
    // The erroring attempt destroys the VM: the host is fully balanced
    // (modulo the IOPT pages the attempt's exhaustion step mapped, which
    // the destroy releases too) and can host another VM immediately.
    assert_eq!(host.buddy().free_pages(), free_before);
    let vm2 = host
        .create_vm(hardened.vm_config())
        .expect("host is reusable");
    vm2.destroy(&mut host);
}

/// Profiles a fault-free tiny host and hands back its catalogue (the
/// reuse pattern of the quarantine test above). `None` when the seed
/// produced no catalogued bits.
fn tiny_catalog() -> Option<FlipCatalog> {
    let sc = Scenario::tiny_demo();
    let mut host = sc.boot_host();
    let mut vm = host.create_vm(sc.vm_config()).unwrap();
    let profiler = Profiler::new(sc.profile_params());
    let report = profiler.run(&mut host, &mut vm).unwrap();
    let catalog = profiler.to_catalog(&vm, &report).unwrap();
    vm.destroy(&mut host);
    (!catalog.entries.is_empty()).then_some(catalog)
}

/// A transient fault that exhausts its retry budget aborts the attempt
/// with `HvError::Transient`, and the teardown leaves the host
/// byte-identical: `free_pages()` is restored and the host can spawn the
/// next VM immediately.
#[test]
fn transient_abort_leaves_host_balanced() {
    let Some(catalog) = tiny_catalog() else {
        return;
    };

    // Every EPT split fails and nothing retries: the spray stage aborts
    // the first attempt deterministically.
    let faulty = Scenario::tiny_demo().with_faults(FaultConfig {
        ept_split_rate: 1.0,
        ..FaultConfig::off()
    });
    let mut host = faulty.boot_host();
    let free_before = host.buddy().free_pages();
    let vm = host.create_vm(faulty.vm_config()).unwrap();
    let driver = AttackDriver::new(DriverParams {
        bits_per_attempt: 2,
        retry: RetryPolicy::none(),
        ..DriverParams::paper()
    });
    let result = driver.run_attempt(&mut host, vm, &catalog, hh_sim::Hpa::new(0));
    match &result {
        Err(e) if e.is_transient() => {}
        other => panic!("expected a transient abort, got {other:?}"),
    }
    assert_eq!(
        host.buddy().free_pages(),
        free_before,
        "aborted attempt leaked host pages"
    );
    let vm2 = host
        .create_vm(faulty.vm_config())
        .expect("host is reusable");
    vm2.destroy(&mut host);
}

/// At the campaign level a transient abort is an attempt outcome, not a
/// campaign error: the driver records `Aborted`, verifies the page
/// balance, and respawns for the next attempt.
#[test]
fn campaign_survives_persistently_faulty_attempts() {
    let Some(catalog) = tiny_catalog() else {
        return;
    };

    let faulty = Scenario::tiny_demo().with_faults(FaultConfig {
        ept_split_rate: 1.0,
        ..FaultConfig::off()
    });
    let mut host = faulty.boot_host();
    let driver = AttackDriver::new(DriverParams {
        bits_per_attempt: 2,
        retry: RetryPolicy::none(),
        ..DriverParams::paper()
    });
    let stats = driver.campaign(&faulty, &mut host, &catalog, 3).unwrap();
    assert_eq!(stats.attempts.len(), 3, "aborts must not end the campaign");
    for attempt in &stats.attempts {
        assert!(
            matches!(attempt.outcome, AttemptOutcome::Aborted(_)),
            "expected aborted attempts, got {:?}",
            attempt.outcome
        );
        assert!(attempt.duration.as_nanos() > 0);
    }
}

/// Satellite: when the spray fails after hugepages were already
/// released, `PageSteering::run` re-plugs them — a failed steering run
/// leaves the VM's virtio-mem plug state exactly as it found it.
#[test]
fn failed_spray_restores_virtio_mem_plug_state() {
    let faulty = Scenario::tiny_demo().with_faults(FaultConfig {
        ept_split_rate: 1.0,
        ..FaultConfig::off()
    });
    let mut host = faulty.boot_host();
    let mut vm = host.create_vm(faulty.vm_config()).unwrap();
    let plugged_before = vm.plugged_sub_blocks();
    let victims: Vec<Gpa> = plugged_before.iter().take(2).copied().collect();
    assert!(!victims.is_empty(), "tiny VM has plugged sub-blocks");

    // No mappings: the exhaustion stage stays off the (everywhere-faulty)
    // EPT-split path, so the first transient is the spray's.
    let steering = PageSteering::new(SteeringParams {
        iova_mappings: 0,
        ..faulty.steering_params()
    })
    .with_retry(RetryPolicy::none());
    let result = steering.run(&mut host, &mut vm, &victims);
    match &result {
        Err(e) if e.is_transient() => {}
        other => panic!("expected the spray to fail transiently, got {other:?}"),
    }
    assert_eq!(
        vm.plugged_sub_blocks(),
        plugged_before,
        "released sub-blocks were not re-plugged"
    );
    for &victim in &victims {
        assert!(vm.virtio_mem().is_plugged(victim).unwrap());
    }
    vm.destroy(&mut host);
}

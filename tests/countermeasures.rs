//! Integration tests for the defences discussed in §6: the virtio-mem
//! quarantine (the authors' QEMU patch) and DRAM-side TRR.

use hh_dram::fault::TrrConfig;
use hh_dram::patterns::{find_effective_pattern, PatternKind};
use hh_dram::{DimmProfile, DramDevice};
use hh_hv::HvError;
use hh_sim::addr::HUGE_PAGE_SIZE;
use hyperhammer::driver::{AttackDriver, DriverParams};
use hyperhammer::machine::Scenario;
use hyperhammer::profile::Profiler;
use hyperhammer::steering::PageSteering;

/// The quarantine policy turns the voluntary-release primitive off, so
/// Page Steering cannot place EPT pages on attacker-chosen frames.
#[test]
fn quarantine_blocks_page_steering() {
    let scenario = Scenario::tiny_demo().with_quarantine();
    let mut host = scenario.boot_host();
    let mut vm = host.create_vm(scenario.vm_config()).unwrap();
    let steering = PageSteering::new(scenario.steering_params());
    let base = vm.virtio_mem().region_base();
    let err = steering
        .release_hugepages(&mut host, &mut vm, &[base, base.add(HUGE_PAGE_SIZE)])
        .unwrap_err();
    assert!(matches!(err, HvError::QuarantineNack { .. }));
    assert!(host.released_log().is_empty(), "nothing must be released");
}

/// A whole campaign against a quarantined host: every attempt fails with
/// the NACK, end to end.
#[test]
fn quarantine_defeats_the_full_campaign() {
    let open = Scenario::tiny_demo();
    let mut host = open.boot_host();
    let mut vm = host.create_vm(open.vm_config()).unwrap();
    let profiler = Profiler::new(open.profile_params());
    let report = profiler.run(&mut host, &mut vm).unwrap();
    let catalog = profiler.to_catalog(&vm, &report).unwrap();
    vm.destroy(&mut host);
    if catalog.entries.is_empty() {
        return;
    }

    // Same catalogue, hardened host.
    let hardened = Scenario::tiny_demo().with_quarantine();
    let mut host = hardened.boot_host();
    let driver = AttackDriver::new(DriverParams {
        bits_per_attempt: 2,
        ..DriverParams::paper()
    });
    let vm = host.create_vm(hardened.vm_config()).unwrap();
    let result = driver.run_attempt(&mut host, vm, &catalog, hh_sim::Hpa::new(0));
    // The release step NACKs: the attempt errors out with the quarantine
    // rejection rather than proceeding to hammer.
    match result {
        Err(HvError::QuarantineNack { .. }) => {}
        Ok(record) => panic!("attack proceeded under quarantine: {record:?}"),
        Err(e) => panic!("unexpected error {e}"),
    }
}

/// Legitimate cooperative resizing keeps working under the quarantine.
#[test]
fn quarantine_preserves_cooperative_resizing() {
    let scenario = Scenario::tiny_demo().with_quarantine();
    let mut host = scenario.boot_host();
    let mut vm = host.create_vm(scenario.vm_config()).unwrap();
    let full = vm.virtio_mem().region_size();

    vm.virtio_mem_set_requested(full - 4 * HUGE_PAGE_SIZE);
    assert_eq!(vm.virtio_mem_sync_to_target(&mut host).unwrap(), 4);
    assert_eq!(vm.virtio_mem().plugged_size(), full - 4 * HUGE_PAGE_SIZE);

    vm.virtio_mem_set_requested(full);
    assert_eq!(vm.virtio_mem_sync_to_target(&mut host).unwrap(), 4);
    assert_eq!(vm.virtio_mem().plugged_size(), full);
}

/// The quarantine also blocks over-shrinking beyond the host target —
/// the `|Δ| > |T − V|` half of the §6 detection rule.
#[test]
fn quarantine_blocks_overshoot_beyond_target() {
    let scenario = Scenario::tiny_demo().with_quarantine();
    let mut host = scenario.boot_host();
    let mut vm = host.create_vm(scenario.vm_config()).unwrap();
    let full = vm.virtio_mem().region_size();
    vm.virtio_mem_set_requested(full - HUGE_PAGE_SIZE);

    // One unplug converges to the target; a second overshoots.
    let base = vm.virtio_mem().region_base();
    vm.virtio_mem_unplug(&mut host, base).unwrap();
    let err = vm
        .virtio_mem_unplug(&mut host, base.add(HUGE_PAGE_SIZE))
        .unwrap_err();
    assert!(matches!(err, HvError::QuarantineNack { .. }));
}

/// DRAM-side: production TRR stops the paper's single-sided pattern but
/// is bypassed by TRRespass-style many-sided patterns (the §6
/// observation that deployed in-DRAM mitigations are insufficient).
#[test]
fn trr_changes_the_required_pattern_but_does_not_stop_hammering() {
    let plain = DimmProfile::test_profile(64 << 20);
    let mut dev = DramDevice::new(plain, 11);
    let no_trr = find_effective_pattern(&mut dev, 400_000, 48).expect("flips");
    assert_eq!(no_trr.pattern, PatternKind::SingleSided);

    let protected = DimmProfile::test_profile(64 << 20).with_trr(TrrConfig::production());
    let mut dev = DramDevice::new(protected, 11);
    let with_trr = find_effective_pattern(&mut dev, 400_000, 48).expect("TRR is bypassable");
    assert!(matches!(with_trr.pattern, PatternKind::NSided(_)));
    assert!(with_trr.activations_spent > no_trr.activations_spent);
}

/// Balloon-path quarantine analogue: ballooning is *not* covered by the
/// virtio-mem patch — the release still works, supporting the paper's
/// §6 argument that each gMD needs its own validation.
#[test]
fn quarantine_does_not_cover_the_balloon_path() {
    let scenario = Scenario::tiny_demo().with_quarantine();
    let mut host = scenario.boot_host();
    let mut vm = host.create_vm(scenario.vm_config()).unwrap();
    let page = vm.virtio_mem().region_base();
    vm.balloon_inflate(&mut host, page).unwrap();
    assert_eq!(host.released_log().len(), 1);
}

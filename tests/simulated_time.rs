//! Cost-model invariants: the simulated clock must scale with work the
//! way the paper's wall-clock figures scale.

use hh_sim::ByteSize;
use hyperhammer::machine::Scenario;
use hyperhammer::profile::Profiler;
use hyperhammer::steering::PageSteering;

/// Profiling time grows with the profiled region (more hugepages to
/// hammer); the per-hugepage cost is constant.
#[test]
fn profiling_time_scales_with_region() {
    let time_for = |viomem_mib: u64| {
        let mut sc = Scenario::tiny_demo();
        let mut vm_cfg = sc.vm_config();
        vm_cfg.virtio_mem = ByteSize::mib(viomem_mib);
        sc = sc.with_vm_config(vm_cfg);
        let mut host = sc.boot_host();
        let mut vm = host.create_vm(sc.vm_config()).unwrap();
        let report = Profiler::new(sc.profile_params())
            .run(&mut host, &mut vm)
            .unwrap();
        (report.duration.as_nanos(), report.hugepages_profiled)
    };
    let (t_small, hp_small) = time_for(32);
    let (t_large, hp_large) = time_for(64);
    assert!(t_large > t_small);
    // Per-hugepage cost within 25 % (characterization work varies with
    // the flips found).
    let per_small = t_small as f64 / hp_small as f64;
    let per_large = t_large as f64 / hp_large as f64;
    let ratio = per_large / per_small;
    assert!((0.75..1.33).contains(&ratio), "per-hugepage ratio {ratio}");
}

/// The hammer loop dominates profiling, as in the paper (72 h of
/// hammering vs minutes of everything else).
#[test]
fn hammering_dominates_profiling_time() {
    let sc = Scenario::tiny_demo();
    let mut host = sc.boot_host();
    let mut vm = host.create_vm(sc.vm_config()).unwrap();
    let params = sc.profile_params();
    let rounds = params.hammer_rounds;
    let t0 = host.now();
    let report = Profiler::new(params).run(&mut host, &mut vm).unwrap();
    let total = host.elapsed_since(t0).as_nanos();
    // Lower bound on pure hammering: pairs × rounds × 2 activations ×
    // cost. 64 pair-combos per hugepage per pass, 2 passes.
    let hammer_floor =
        report.hugepages_profiled * 64 * rounds * 2 * host.cost_model().hammer_activation_nanos;
    assert!(
        total >= hammer_floor,
        "total {total} below hammer floor {hammer_floor}"
    );
    // On the dense test DIMM, flip *characterization* (which is more
    // hammering) takes most of the rest; the main-pass floor alone is a
    // respectable share. On the sparse paper DIMMs the main pass is
    // ~95 % (see Table 1 calibration in EXPERIMENTS.md).
    assert!(
        hammer_floor as f64 / total as f64 > 0.15,
        "main-pass hammering share too small: {:.2}",
        hammer_floor as f64 / total as f64
    );
}

/// The artificial Figure 3 batch delay advances the clock exactly.
#[test]
fn fig3_delays_are_exact() {
    let sc = Scenario::tiny_demo();
    let mut params = sc.steering_params();
    params.batch_delay_secs = 2;
    params.iova_mappings = 1_000;
    params.mapping_batch = 100;
    let mut host = sc.boot_host();
    let mut vm = host.create_vm(sc.vm_config()).unwrap();
    let t0 = host.now();
    PageSteering::new(params)
        .exhaust_noise(&mut host, &mut vm)
        .unwrap();
    let elapsed = host.elapsed_since(t0);
    // 10 batches × 2 s of delay, plus per-map costs (1 000 × 25 µs).
    assert!(elapsed.as_secs_f64() >= 20.0);
    assert!(elapsed.as_secs_f64() < 21.0, "elapsed {elapsed}");
}

/// Scan costs are charged by range size, not by corruption found.
#[test]
fn scan_cost_depends_on_range_only() {
    let sc = Scenario::tiny_demo();
    let mut host = sc.boot_host();
    let vm = host.create_vm(sc.vm_config()).unwrap();
    let len = vm.config().total_mem().bytes();
    let t0 = host.now();
    let cursor = vm.journal_cursor(&host);
    vm.scan_for_flips(&mut host, cursor, hh_sim::Gpa::new(0), len);
    let one = host.elapsed_since(t0).as_nanos();
    let t1 = host.now();
    vm.scan_for_flips(&mut host, cursor, hh_sim::Gpa::new(0), len);
    vm.scan_for_flips(&mut host, cursor, hh_sim::Gpa::new(0), len);
    let two = host.elapsed_since(t1).as_nanos();
    assert_eq!(two, one * 2, "scan cost must be deterministic in range");
}

//! One profiled host fans out into N forked cells without
//! re-profiling: the trace counters show exactly one profile stage for
//! N attacking cells, and every fork attacks off the shared catalog.

use hyperhammer::driver::{AttackDriver, DriverParams};
use hyperhammer::Machine;

use hh_hv::FaultConfig;
use hh_trace::{Counter, Stage, TraceMode, Tracer};

fn driver() -> AttackDriver {
    AttackDriver::new(DriverParams {
        bits_per_attempt: 4,
        stable_bits_only: true,
        ..DriverParams::paper()
    })
}

#[test]
fn one_profile_feeds_n_forked_cells() {
    const FORKS: usize = 3;

    // Profile the parent once, under a metrics tracer.
    let mut parent = Machine::boot("tiny", 0x5EED, FaultConfig::default()).expect("tiny exists");
    parent
        .host_mut()
        .attach_tracer(Tracer::new(TraceMode::Metrics));
    let scenario = parent.scenario().clone();
    let drv = driver();
    {
        let host = parent.host_mut();
        let mut vm = host.create_vm(scenario.vm_config()).expect("vm boots");
        let catalog = drv
            .profile_and_catalog(host, &mut vm, scenario.profile_params())
            .expect("profiling succeeds");
        vm.destroy(host);
        parent.set_catalog(catalog);
    }

    // Round-trip through a snapshot so the fan-out starts from a
    // *restored* host, the shape a resumed campaign would use.
    let restored = Machine::restore(&parent.snapshot()).expect("snapshot round-trips");
    let mut restored = restored;
    restored
        .host_mut()
        .attach_tracer(Tracer::new(TraceMode::Metrics));

    let forks: Vec<Machine> = (0..FORKS).map(|_| restored.fork()).collect();
    let fork_count = restored
        .host()
        .tracer()
        .inspect(|s| s.metrics().get(Counter::SnapshotForks))
        .expect("tracer attached");
    assert_eq!(fork_count, FORKS as u64);

    // Every fork runs an attack campaign straight off the inherited
    // catalog — none of them spends a nanosecond in the profile stage.
    for mut fork in forks {
        let catalog = fork.catalog().expect("catalog travels with forks").clone();
        fork.host_mut()
            .attach_tracer(Tracer::new(TraceMode::Metrics));
        let stats = drv
            .campaign(&scenario, fork.host_mut(), &catalog, 2)
            .expect("forked cell attacks");
        assert!(!stats.attempts.is_empty());
        let sink = fork.host().tracer().take_sink().expect("tracer attached");
        assert_eq!(
            sink.metrics().stage_nanos(Stage::Profile),
            0,
            "a forked cell re-profiled instead of reusing the parent's catalog"
        );
    }

    // The only profile work in the whole fan-out happened once, in the
    // parent, before forking.
    let parent_sink = parent.host().tracer().take_sink().expect("tracer attached");
    assert!(parent_sink.metrics().stage_nanos(Stage::Profile) > 0);
}

//! Streaming equivalence (satellite of the bounded-memory PR): the
//! spill-shard streaming path must be byte-identical to serializing an
//! in-memory run — for every worker count, with and without tracing,
//! and including the awkward shapes (empty grid, one cell, more
//! workers than cells, faulted campaigns with aborted attempts).

use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};

use hh_hv::FaultConfig;
use hh_trace::TraceMode;
use hyperhammer::driver::{AttemptOutcome, DriverParams};
use hyperhammer::machine::Scenario;
use hyperhammer::parallel::{CampaignGrid, CellResult, StreamError};
use hyperhammer::steering::RetryPolicy;
use hyperhammer::streamref::{merge_shards, CampaignAggregate, CampaignStreamer};

/// The formatters must be pure functions of the cell; `Debug` of the
/// stats is deterministic and covers every field the CLI would print.
fn fmt_cell(result: &CellResult, out: &mut String) {
    writeln!(
        out,
        "{{\"scenario\":\"{}\",\"seed\":{},\"bits\":{},\"stats\":\"{:?}\"}}",
        result.scenario, result.seed, result.catalog_bits, result.stats
    )
    .expect("write to String");
}

fn fmt_trace(result: &CellResult, out: &mut String) {
    if let Some(sink) = &result.trace {
        for event in sink.events() {
            writeln!(out, "{} {event:?}", sink.cell()).expect("write to String");
        }
    }
}

type Fmt = fn(&CellResult, &mut String);

/// Everything the two paths must agree on.
#[derive(Debug, PartialEq)]
struct Output {
    cells: String,
    traces: String,
    aggregate: CampaignAggregate,
}

/// The in-memory reference: run serially, serialize in grid order,
/// fold the aggregate in grid order.
fn in_memory(grid: &CampaignGrid) -> Result<Output, StreamError> {
    let results = grid.run_serial()?;
    let mut out = Output {
        cells: String::new(),
        traces: String::new(),
        aggregate: CampaignAggregate::default(),
    };
    for result in &results {
        out.aggregate.observe(result);
        fmt_cell(result, &mut out.cells);
        fmt_trace(result, &mut out.traces);
    }
    Ok(out)
}

/// The streaming path: exactly `jobs` OS threads (no parallelism
/// clamp), per-worker spill shards, grid-order merge.
fn streamed(
    grid: &CampaignGrid,
    jobs: usize,
    with_traces: bool,
    dir: &Path,
) -> Result<Output, StreamError> {
    let consumers = grid
        .run_streamed_exact(NonZeroUsize::new(jobs).expect("non-zero jobs"), |worker| {
            CampaignStreamer::new(dir, worker, with_traces, fmt_cell as Fmt, fmt_trace as Fmt)
        })?;
    let mut aggregates = Vec::new();
    let mut cell_shards = Vec::new();
    let mut trace_shards = Vec::new();
    for consumer in consumers {
        let (aggregate, cells, traces) = consumer.finish().expect("spill flush");
        aggregates.push(aggregate);
        cell_shards.extend(cells);
        trace_shards.extend(traces);
    }
    let mut cells = Vec::new();
    merge_shards(cell_shards, grid.len(), &mut cells).expect("cell shards tile the grid");
    let mut traces = Vec::new();
    if with_traces {
        merge_shards(trace_shards, grid.len(), &mut traces).expect("trace shards tile the grid");
    }
    Ok(Output {
        cells: String::from_utf8(cells).expect("shards hold UTF-8 lines"),
        traces: String::from_utf8(traces).expect("shards hold UTF-8 lines"),
        aggregate: CampaignAggregate::merged(&aggregates),
    })
}

/// A scratch dir under the system temp root, removed on drop so failed
/// assertions don't strand spill files across runs.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hh-stream-eq-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn micro_grid(cells: usize, trace: TraceMode) -> CampaignGrid {
    let params = DriverParams {
        bits_per_attempt: 4,
        stable_bits_only: true,
        ..DriverParams::paper()
    };
    CampaignGrid::new(vec![Scenario::micro_demo()], params, 2)
        .with_seed_count(0x57e4_11ed, cells)
        .with_trace(trace)
}

/// Asserts byte-identity (cells, traces, merged aggregate) between the
/// in-memory reference and the streaming path at several worker counts.
fn assert_equivalent(grid: &CampaignGrid, with_traces: bool, tag: &str) {
    let reference = in_memory(grid).expect("reference grid runs");
    for jobs in [1usize, 2, 8] {
        let scratch = ScratchDir::new(&format!("{tag}-j{jobs}"));
        let got = streamed(grid, jobs, with_traces, &scratch.0).expect("streamed grid runs");
        assert_eq!(
            got, reference,
            "{tag}: streaming diverged from in-memory at {jobs} workers"
        );
    }
}

#[test]
fn traced_grid_streams_byte_identically_at_1_2_8_workers() {
    assert_equivalent(&micro_grid(6, TraceMode::Full), true, "traced");
}

#[test]
fn untraced_grid_streams_byte_identically() {
    let grid = micro_grid(5, TraceMode::Off);
    assert_equivalent(&grid, false, "untraced");
    // Untraced cells contribute no flip samples — the aggregate must
    // reflect that rather than recording zeros.
    let reference = in_memory(&grid).expect("reference grid runs");
    assert_eq!(reference.aggregate.flips.count(), 0);
    assert_eq!(reference.aggregate.cells, 5);
}

#[test]
fn empty_grid_streams_to_empty_output() {
    let params = DriverParams {
        bits_per_attempt: 4,
        ..DriverParams::paper()
    };
    let grid = CampaignGrid::new(Vec::new(), params, 2).with_trace(TraceMode::Full);
    assert!(grid.is_empty());
    for jobs in [1usize, 4] {
        let scratch = ScratchDir::new(&format!("empty-j{jobs}"));
        let got = streamed(&grid, jobs, true, &scratch.0).expect("empty grid streams");
        assert_eq!(got.cells, "");
        assert_eq!(got.traces, "");
        assert_eq!(got.aggregate, CampaignAggregate::default());
    }
}

#[test]
fn single_cell_and_more_workers_than_cells_match() {
    assert_equivalent(&micro_grid(1, TraceMode::Full), true, "one-cell");
    // 3 cells on up to 8 workers: most workers never see a cell and
    // must contribute empty shard manifests, not coverage gaps.
    assert_equivalent(&micro_grid(3, TraceMode::Full), true, "starved-workers");
}

/// A grid spanning every attack variant streams byte-identically too —
/// variant cells spill, merge and aggregate like any other, and the
/// aggregate's per-variant counters tile the totals exactly.
#[test]
fn variant_grid_streams_byte_identically() {
    use hyperhammer::machine::AttackVariant;
    let params = DriverParams {
        bits_per_attempt: 4,
        stable_bits_only: true,
        ..DriverParams::paper()
    };
    let scenarios: Vec<Scenario> = AttackVariant::ALL
        .iter()
        .map(|v| Scenario::tiny_demo().with_variant(*v))
        .collect();
    let grid = CampaignGrid::new(scenarios, params, 2)
        .with_seed_count(0x7a57e, 1)
        .with_trace(TraceMode::Full);
    assert_equivalent(&grid, true, "variants");

    let reference = in_memory(&grid).expect("reference grid runs");
    let agg = &reference.aggregate;
    assert_eq!(agg.variant_cells.iter().sum::<u64>(), agg.cells);
    assert_eq!(agg.variant_attempts.iter().sum::<u64>(), agg.attempts);
    assert_eq!(agg.variant_succeeded.iter().sum::<u64>(), agg.succeeded);
    assert_eq!(
        agg.variant_cells,
        [1; AttackVariant::COUNT],
        "one cell per variant lands in its own counter slot"
    );
}

/// Faulted campaigns stream identically too — aborted attempts and
/// their trace events are per-cell state, so scheduling cannot move
/// them between cells.
#[test]
fn faulted_campaign_with_aborted_cells_streams_identically() {
    let params = DriverParams {
        bits_per_attempt: 4,
        stable_bits_only: true,
        retry: RetryPolicy::none(),
        ..DriverParams::paper()
    };
    // Same rate regime as the chaos tests: ~10⁵ choke-point draws per
    // attempt, so 3e-6 aborts a sizeable fraction of attempts.
    let grid = CampaignGrid::new(vec![Scenario::tiny_demo()], params, 4)
        .with_faults(FaultConfig::uniform(3e-6).with_seed(0xabad_fa57))
        .with_seed_count(0x5eed_cafe, 2)
        .with_trace(TraceMode::Full);

    let reference = in_memory(&grid).expect("faulted reference runs");
    assert!(
        reference.aggregate.aborted_attempts > 0,
        "fault seed produced no aborted attempts — the test is vacuous"
    );
    for jobs in [1usize, 2, 8] {
        let scratch = ScratchDir::new(&format!("faulted-j{jobs}"));
        let got = streamed(&grid, jobs, true, &scratch.0).expect("faulted grid streams");
        assert_eq!(
            got, reference,
            "faulted streaming diverged from in-memory at {jobs} workers"
        );
    }
}

/// When a cell dies, the streaming run must report the same grid-order
/// first error the in-memory path would, at every worker count.
#[test]
fn streaming_reports_the_grid_order_first_error() {
    // A brutal fault rate with zero retries kills cells during
    // profiling, before any attempt exists. Attempt-stage faults only
    // abort attempts (not the cell), so probe fault seeds for one that
    // actually dies rather than pinning a curated survivor.
    let grid_for = |fault_seed: u64| {
        let params = DriverParams {
            bits_per_attempt: 4,
            retry: RetryPolicy::none(),
            ..DriverParams::paper()
        };
        CampaignGrid::new(vec![Scenario::tiny_demo()], params, 2)
            .with_faults(FaultConfig::uniform(0.9).with_seed(fault_seed))
            .with_seed_count(0xfa57_5eed, 2)
    };
    let (grid, reference) = (0u64..8)
        .find_map(|s| {
            let grid = grid_for(0xdead_beef ^ s);
            grid.run_serial().err().map(|e| (grid, e))
        })
        .expect("a 90% fault rate with no retries kills some cell");
    for jobs in [1usize, 2, 8] {
        let scratch = ScratchDir::new(&format!("error-j{jobs}"));
        let err = streamed(&grid, jobs, false, &scratch.0)
            .expect_err("streamed run must fail like the serial one");
        match err {
            StreamError::Hv(e) => assert_eq!(
                e, reference,
                "streaming surfaced a different first error at {jobs} workers"
            ),
            StreamError::Io(e) => panic!("expected a hypervisor error, got I/O: {e}"),
            StreamError::Cancelled => panic!("expected a hypervisor error, got cancellation"),
        }
    }
}

/// The merged aggregate is a plain fold of the serial results — spot
/// check the headline numbers against a hand fold.
#[test]
fn aggregate_matches_a_hand_fold_of_serial_results() {
    let grid = micro_grid(4, TraceMode::Off);
    let results = grid.run_serial().expect("serial grid runs");
    let scratch = ScratchDir::new("hand-fold");
    let got = streamed(&grid, 2, false, &scratch.0).expect("streamed grid runs");

    let attempts: u64 = results.iter().map(|r| r.stats.attempts.len() as u64).sum();
    let succeeded = results
        .iter()
        .filter(|r| r.stats.first_success().is_some())
        .count() as u64;
    let aborted = results
        .iter()
        .flat_map(|r| r.stats.attempts.iter())
        .filter(|a| matches!(a.outcome, AttemptOutcome::Aborted(_)))
        .count() as u64;
    assert_eq!(got.aggregate.cells, 4);
    assert_eq!(got.aggregate.attempts, attempts);
    assert_eq!(got.aggregate.succeeded, succeeded);
    assert_eq!(got.aggregate.aborted_attempts, aborted);
    assert_eq!(got.aggregate.catalog_bits.count(), 4);
}

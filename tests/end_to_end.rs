//! End-to-end integration tests spanning every crate: DRAM model →
//! buddy allocator → hypervisor → attack.

use hh_sim::addr::{Gpa, HUGE_PAGE_SIZE, PAGE_SIZE};
use hh_sim::ByteSize;
use hyperhammer::driver::{AttackDriver, AttemptOutcome, DriverParams};
use hyperhammer::exploit::{magic_of, ExploitParams, Exploiter};
use hyperhammer::machine::Scenario;
use hyperhammer::profile::Profiler;
use hyperhammer::steering::PageSteering;

/// The full pipeline executes and produces coherent records at every
/// stage, whatever the dice decide about final success.
#[test]
fn full_pipeline_runs_and_accounts_consistently() {
    let scenario = Scenario::tiny_demo();
    let mut host = scenario.boot_host();
    let mut vm = host.create_vm(scenario.vm_config()).unwrap();

    // Profile.
    let profiler = Profiler::new(scenario.profile_params());
    let report = profiler.run(&mut host, &mut vm).unwrap();
    assert!(report.total() > 0);
    let catalog = profiler.to_catalog(&vm, &report).unwrap();
    vm.destroy(&mut host);

    // Attack attempts.
    let driver = AttackDriver::new(DriverParams {
        bits_per_attempt: 2,
        ..DriverParams::paper()
    });
    let stats = driver.campaign(&scenario, &mut host, &catalog, 2).unwrap();
    assert!(!stats.attempts.is_empty());
    for attempt in &stats.attempts {
        match &attempt.outcome {
            AttemptOutcome::Success(proof) => {
                assert_eq!(proof.value_read, 0x4b56_4d45_5343_4150);
            }
            AttemptOutcome::Failed(_) => {
                assert!(attempt.bits_targeted > 0);
                assert!(attempt.released <= attempt.bits_targeted);
            }
            AttemptOutcome::NoUsableBits => {}
            AttemptOutcome::Aborted(e) => {
                panic!("faults are off in this scenario, yet an attempt aborted: {e}");
            }
            AttemptOutcome::PteCorrupted(_) | AttemptOutcome::Steered { .. } => {
                panic!(
                    "default-variant campaigns never produce variant-specific \
                     outcomes: {:?}",
                    attempt.outcome
                );
            }
        }
        assert!(attempt.duration.as_nanos() > 0);
    }
}

/// A manufactured flip drives the complete §4.3 exploitation chain:
/// detection, format screening, live validation, escape, arbitrary read.
#[test]
fn forged_epte_flip_escapes_the_vm() {
    let scenario = Scenario::small_attack();
    let mut host = scenario.boot_host();
    let mut vm = host.create_vm(scenario.vm_config()).unwrap();
    let steering = PageSteering::new(scenario.steering_params());
    let exploiter = Exploiter::new(ExploitParams::paper());

    exploiter.stamp_magic(&mut host, &mut vm).unwrap();
    steering.spray_ept(&mut host, &mut vm, 64 << 21).unwrap();

    // Host-side secret the attacker will read after escaping.
    let secret = host
        .buddy_mut()
        .alloc_page(hh_buddy::MigrateType::Unmovable)
        .unwrap();
    host.dram_mut()
        .store_mut()
        .write_u64(secret.base_hpa(), 0xfeed_f00d_dead_beef);

    // Forge the "Rowhammer flip": redirect one stamped page's EPTE to a
    // sprayed EPT page, exactly what a PFN-bit flip does.
    let victim = Gpa::new(0x6000);
    let victim_pt = vm.leaf_epte_hpa(&host, victim).unwrap().pfn();
    let ept_page = *vm
        .ept_leaf_pages(&host)
        .iter()
        .find(|p| **p != victim_pt)
        .unwrap();
    let entry_hpa = vm.leaf_epte_hpa(&host, victim).unwrap();
    let raw = host.dram().store().read_u64(entry_hpa);
    let pfn_mask = ((1u64 << 48) - 1) & !0xfff;
    host.dram_mut()
        .store_mut()
        .write_u64(entry_hpa, raw & !pfn_mask | (ept_page.index() << 12));

    // The attacker-side chain.
    assert!(exploiter.looks_like_ept_page(&host, &vm, victim));
    let proof = exploiter
        .validate_and_escape(&mut host, &mut vm, victim, &[victim], secret.base_hpa())
        .unwrap()
        .expect("live EPT page must validate");
    assert_eq!(proof.value_read, 0xfeed_f00d_dead_beef);
}

/// Page Steering puts EPT pages onto frames the VM released — verified
/// against hypervisor-side ground truth.
#[test]
fn released_frames_end_up_hosting_eptes() {
    let scenario = Scenario::small_attack();
    let mut host = scenario.boot_host();
    let mut vm = host.create_vm(scenario.vm_config()).unwrap();
    let steering = PageSteering::new(scenario.steering_params());

    steering.exhaust_noise(&mut host, &mut vm).unwrap();
    host.reset_released_log();
    let base = vm.virtio_mem().region_base();
    let victims: Vec<Gpa> = (0..6u64)
        .map(|i| base.add(i * 3 * HUGE_PAGE_SIZE))
        .collect();
    let released = steering
        .release_hugepages(&mut host, &mut vm, &victims)
        .unwrap();
    steering
        .spray_ept(
            &mut host,
            &mut vm,
            PageSteering::spray_budget(released.len()).min(3 << 30),
        )
        .unwrap();

    let reuse = PageSteering::reuse_stats(&host, &vm);
    assert!(reuse.reused_pages > 0, "{reuse:?}");
    assert!(reuse.ept_pages > 512, "spray created many EPT pages");
    // Conservation: R cannot exceed either N or E.
    assert!(reuse.reused_pages <= reuse.released_pages);
    assert!(reuse.reused_pages <= reuse.ept_pages);
}

/// The 21-bit address-leak premise: GPA and HPA agree on the low 21 bits
/// for every THP-backed page, which is what lets the profiler compute
/// relative DRAM banks (§4.1).
#[test]
fn thp_preserves_low_21_bits() {
    let scenario = Scenario::tiny_demo();
    let mut host = scenario.boot_host();
    let vm = host.create_vm(scenario.vm_config()).unwrap();
    for chunk in 0..vm.config().total_mem().bytes() / HUGE_PAGE_SIZE {
        for probe in [0u64, 0x1234, 0x1f_f000] {
            let gpa = Gpa::new(chunk * HUGE_PAGE_SIZE + probe);
            let hpa = vm.translate_gpa(&host, gpa).unwrap().hpa;
            assert_eq!(
                gpa.raw() & ((1 << 21) - 1),
                hpa.raw() & ((1 << 21) - 1),
                "low 21 bits must survive translation"
            );
        }
    }
}

/// Corrupting a single EPTE PFN bit in DRAM redirects exactly that 4 KiB
/// page and nothing else.
#[test]
fn epte_flip_redirects_exactly_one_page() {
    let scenario = Scenario::tiny_demo();
    let mut host = scenario.boot_host();
    let mut vm = host.create_vm(scenario.vm_config()).unwrap();
    let exploiter = Exploiter::new(ExploitParams::paper());
    exploiter.stamp_magic(&mut host, &mut vm).unwrap();
    vm.exec_gpa(&mut host, Gpa::new(0)).unwrap(); // split chunk 0

    let victim = Gpa::new(7 * PAGE_SIZE);
    let entry_hpa = vm.leaf_epte_hpa(&host, victim).unwrap();
    let raw = host.dram().store().read_u64(entry_hpa);
    host.dram_mut()
        .store_mut()
        .write_u64(entry_hpa, raw ^ (1 << 22));

    // Every other page in the chunk still carries its magic.
    for i in 0..512u64 {
        let gpa = Gpa::new(i * PAGE_SIZE);
        let value = vm.read_u64_gpa(&host, gpa);
        if gpa == victim {
            assert_ne!(value.unwrap_or(0), magic_of(gpa));
        } else {
            assert_eq!(value.unwrap(), magic_of(gpa), "page {i} must be untouched");
        }
    }
}

/// The analytical bound brackets reality: on a host where the VM owns
/// most of memory, the per-attempt success probability is of order
/// 1/512, never better.
#[test]
fn analysis_bound_is_an_upper_bound_for_the_simulated_attack() {
    let p = hyperhammer::analysis::success_probability(ByteSize::gib(13), ByteSize::gib(16));
    assert!(p < 1.0 / 512.0);
    assert!(p > 1.0 / 1024.0);
}

//! Format-compatibility gate for the `hyperhammer-snap-v1` snapshot
//! format, pinned by the golden fixture `tests/fixtures/snap-v1.bin`.
//!
//! The fixture is a committed snapshot of [`fixture_machine`]. The
//! checks here fail whenever the current decoder can no longer read
//! bytes written by a previous build, or the current encoder stops
//! producing those bytes — either way the format changed and
//! `SNAP_VERSION` must be bumped, the fixture regenerated (run the
//! `#[ignore]`d `regenerate_golden_fixture` test), and a migration note
//! added to `CHANGELOG.md`.

use hyperhammer::driver::{AttackDriver, DriverParams};
use hyperhammer::{Machine, SNAP_MAGIC, SNAP_VERSION};

use hh_buddy::MigrateType;
use hh_hv::FaultConfig;

/// Absolute path of the committed golden fixture.
const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/snap-v1.bin"
);

/// The machine the fixture pins: a deterministic recipe touching every
/// serialized subsystem (buddy free lists, EPT pages in DRAM, clock,
/// RNG, fault stream, profiled catalog). Changing this recipe
/// invalidates the fixture — regenerate it if you must.
fn fixture_machine() -> Machine {
    let mut m = Machine::boot("tiny", 0xF1C5, FaultConfig::uniform(0.01).with_seed(7))
        .expect("tiny scenario exists");
    let scenario = m.scenario().clone();
    let host = m.host_mut();
    for _ in 0..3 {
        let _ = host.alloc_ept_page();
    }
    let blk = host
        .buddy_mut()
        .alloc(3, MigrateType::Movable)
        .expect("fresh tiny host has free order-3 blocks");
    host.buddy_mut().free(blk, 3);
    host.charge_nanos(123_456_789);
    let _ = host.rng_mut().next_u64();
    let _ = host.rng_mut().next_u64();

    // Attach a profiled catalog so the fixture exercises the catalog
    // section of the format too.
    let driver = AttackDriver::new(DriverParams {
        bits_per_attempt: 4,
        stable_bits_only: true,
        ..DriverParams::paper()
    });
    let host = m.host_mut();
    let mut vm = host.create_vm(scenario.vm_config()).expect("vm boots");
    let catalog = driver
        .profile_and_catalog(host, &mut vm, scenario.profile_params())
        .expect("profiling succeeds on tiny");
    vm.destroy(host);
    m.set_catalog(catalog);
    m
}

fn read_fixture() -> Vec<u8> {
    std::fs::read(FIXTURE).unwrap_or_else(|e| {
        panic!(
            "golden fixture {FIXTURE} unreadable ({e}); regenerate it with \
             `cargo test -p hyperhammer --test snapshot_compat -- --ignored regenerate`"
        )
    })
}

/// The committed bytes must still decode, and decode to exactly the
/// state they were written from. A failure here means a decoder change
/// broke compatibility with snapshots already on disk.
#[test]
fn golden_fixture_still_decodes_to_the_pinned_machine() {
    let bytes = read_fixture();
    let restored = Machine::restore(&bytes).unwrap_or_else(|e| {
        panic!(
            "current decoder cannot read the committed snap-v1 fixture: {e}; \
             if the format changed on purpose, bump SNAP_VERSION, refresh the \
             fixture, and add a CHANGELOG.md migration note"
        )
    });
    assert_eq!(restored.scenario_name(), "tiny");
    assert_eq!(restored.seed(), 0xF1C5);
    assert_eq!(
        restored.digest(),
        fixture_machine().digest(),
        "fixture decodes to a different machine state than its recipe produces"
    );
}

/// The current encoder must still emit the committed byte stream, both
/// when re-encoding the restored fixture and when serializing the
/// recipe from scratch. A failure here means the wire format drifted
/// without a version bump.
#[test]
fn current_encoder_reproduces_the_fixture_bytes() {
    let bytes = read_fixture();
    let restored = Machine::restore(&bytes).expect("fixture decodes");
    assert_eq!(
        restored.snapshot(),
        bytes,
        "restore→snapshot round trip no longer reproduces the committed bytes"
    );
    assert_eq!(
        fixture_machine().snapshot(),
        bytes,
        "encoding the fixture recipe from scratch diverged from the committed bytes"
    );
}

/// Guards the version constant and the version embedded in the fixture.
/// Bumping `SNAP_VERSION` is allowed only together with a refreshed
/// fixture (rename it to `snap-v<N>.bin`, update `FIXTURE` here) and a
/// `CHANGELOG.md` migration note describing how old snapshots are
/// handled.
#[test]
fn version_bump_requires_a_fixture_refresh_and_changelog_note() {
    assert_eq!(
        SNAP_VERSION, 1,
        "SNAP_VERSION changed: refresh tests/fixtures/snap-v1.bin (regenerate \
         test), rename it for the new version, and add a CHANGELOG.md \
         migration note before shipping"
    );
    let bytes = read_fixture();
    assert_eq!(&bytes[..SNAP_MAGIC.len()], SNAP_MAGIC);
    let mut v = [0u8; 4];
    v.copy_from_slice(&bytes[SNAP_MAGIC.len()..SNAP_MAGIC.len() + 4]);
    assert_eq!(
        u32::from_le_bytes(v),
        SNAP_VERSION,
        "fixture was written by a different format version than the code claims"
    );
}

/// Rewrites the golden fixture from the recipe. Run explicitly after an
/// intentional format change:
/// `cargo test -p hyperhammer --test snapshot_compat -- --ignored regenerate`
#[test]
#[ignore = "rewrites the committed golden fixture"]
fn regenerate_golden_fixture() {
    let bytes = fixture_machine().snapshot();
    let path = std::path::Path::new(FIXTURE);
    std::fs::create_dir_all(path.parent().expect("fixture has a parent dir"))
        .expect("create tests/fixtures");
    std::fs::write(path, &bytes).expect("write fixture");
    println!("wrote {} bytes to {FIXTURE}", bytes.len());
}

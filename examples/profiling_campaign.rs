//! A profiling campaign with early stopping, demonstrating the §5.3.3
//! observation that an attacker needs only ~12 exploitable bits per
//! attempt, not a full profile.
//!
//! ```sh
//! cargo run --release --example profiling_campaign
//! ```

use hyperhammer::machine::Scenario;
use hyperhammer::profile::{ProfileParams, Profiler};

fn run(label: &str, params: ProfileParams, scenario: &Scenario) {
    let mut host = scenario.boot_host();
    let mut vm = host
        .create_vm(scenario.vm_config())
        .expect("host backs the VM");
    let report = Profiler::new(params.clone())
        .run(&mut host, &mut vm)
        .expect("profiling runs");
    let exploitable = report.exploitable(params.host_mem, &vm).len();
    println!(
        "{label:<22} {:>7} | {:>5} flips ({} stable, {} exploitable) | {:>5} hugepages hammered",
        format!("{}", report.duration),
        report.total(),
        report.stable(),
        exploitable,
        report.hugepages_profiled,
    );
    // Show a few found bits with their attack coordinates.
    for bit in report.bits.iter().take(3) {
        println!(
            "    flip @ {} bit {} ({:?}, word-bit {}) <- aggressors {} / {}",
            bit.gpa,
            bit.bit,
            bit.direction,
            bit.bit_in_word(),
            bit.aggressors[0],
            bit.aggressors[1],
        );
    }
    vm.destroy(&mut host);
}

fn main() {
    let scenario = Scenario::small_attack();
    println!("== profiling campaigns on '{}' ==", scenario.name);
    println!("(simulated time | results)\n");

    let full = scenario.profile_params();
    run("full profile:", full.clone(), &scenario);

    let early = ProfileParams {
        stop_after_exploitable: Some(4),
        ..full
    };
    run("stop after 4 expl.:", early, &scenario);

    println!("\nEarly stopping is what turns the paper's 72 h full profile into the");
    println!("~9 h per-attempt profiling cost of the §5.3.3 end-to-end estimate.");
}

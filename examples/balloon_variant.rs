//! The §6 virtio-balloon variant: releasing memory per 4 KiB page
//! instead of per 2 MiB sub-block.
//!
//! The paper leaves a full balloon-based HyperHammer to future work but
//! analyses the mechanics: ballooning a page out of a THP-backed chunk
//! forces a hugepage split (allocating an EPT page — the multihit lever
//! for free!) and frees exactly the vulnerable 4 KiB frame, with no
//! sub-block alignment constraint and no noise left from the other 511
//! pages. This example demonstrates those mechanics end to end.
//!
//! ```sh
//! cargo run --release --example balloon_variant
//! ```

use hh_dram::FlipDirection;
use hh_sim::addr::{Gpa, HUGE_PAGE_SIZE, PAGE_SIZE};
use hyperhammer::balloon_steering::BalloonSteering;
use hyperhammer::driver::RelocatedBit;
use hyperhammer::machine::Scenario;
use hyperhammer::steering::PageSteering;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::small_attack();
    let mut host = scenario.boot_host();
    let mut vm = host.create_vm(scenario.vm_config())?;
    println!("== virtio-balloon release variant (§6) ==\n");

    // Exhaust noise first, as in the virtio-mem attack.
    let steering = PageSteering::new(scenario.steering_params());
    steering.exhaust_noise(&mut host, &mut vm)?;
    host.reset_released_log();

    // Balloon out a handful of "vulnerable" pages — note the 4 KiB
    // granularity: the attacker releases exactly the vulnerable frames.
    let region_base = vm.virtio_mem().region_base();
    let victims: Vec<Gpa> = (0..8u64)
        .map(|i| region_base.add(i * 37 * PAGE_SIZE + 3 * PAGE_SIZE))
        .collect();
    let leaves_before = vm.ept_leaf_pages(&host).len();
    for &v in &victims {
        vm.balloon_inflate(&mut host, v)?;
    }
    println!(
        "ballooned {} pages; hugepage splits created {} EPT pages as a side effect",
        vm.balloon().inflated_pages(),
        vm.ept_leaf_pages(&host).len() - leaves_before,
    );
    println!(
        "released exactly {} frames (vs {} for the same bits via virtio-mem sub-blocks)",
        host.released_log().len(),
        512 * victims.len(),
    );

    // Spray EPT pages; the released order-0 frames are prime targets.
    let spray = steering.spray_ept(&mut host, &mut vm, 2 << 30)?;
    let reuse = PageSteering::reuse_stats(&host, &vm);
    println!(
        "\nspray: {} splits; reuse: R = {} of N = {} released frames (R_N = {:.0}%)",
        spray.splits,
        reuse.reused_pages,
        reuse.released_pages,
        100.0 * reuse.r_n()
    );
    println!("\nPer-page release makes every released frame a candidate EPT frame — the");
    println!("paper's observation that the balloon path needs no free-list exhaustion");
    println!("of order-9 blocks, only of the small-order lists (§6).");

    // The engineered version (this repo's extension of the §6 sketch):
    // inflate a vulnerable page, immediately trigger one split, and the
    // PCP's LIFO hands the freed frame straight to the EPT allocation.
    println!("\n== engineered balloon steering (inflate -> split, per bit) ==");
    let mut host = scenario.boot_host();
    let mut vm = host.create_vm(scenario.vm_config())?;
    let base = vm.virtio_mem().region_base();
    let bits: Vec<RelocatedBit> = (0..6u64)
        .map(|i| RelocatedBit {
            gpa: base.add(i * 5 * HUGE_PAGE_SIZE + 9 * PAGE_SIZE + 3),
            bit: 5,
            direction: FlipDirection::ZeroToOne,
            aggressors: [
                base.add((i * 5 + 1) * HUGE_PAGE_SIZE),
                base.add((i * 5 + 1) * HUGE_PAGE_SIZE + 64),
            ],
            stable: true,
        })
        .collect();
    let mut pool: Vec<Gpa> = (800..820u64)
        .map(|i| base.add(i * HUGE_PAGE_SIZE))
        .collect();
    let stats = BalloonSteering::new().steer(&mut host, &mut vm, &bits, &mut pool)?;
    println!(
        "placed EPT pages on {} of {} vulnerable frames ({:.0}% — one sprayed hugepage per bit,",
        stats
            .placements
            .iter()
            .filter(|p| p.ept_on_released_frame)
            .count(),
        stats.placements.len(),
        100.0 * stats.placement_rate()
    );
    println!("vs 512 x (N+2) for the virtio-mem path) — the §6 variant, engineered.");
    Ok(())
}

//! The §6 Xen comparison: Page Steering without the exhaustion step.
//!
//! On KVM, EPT pages are `MIGRATE_UNMOVABLE` order-0 allocations, so the
//! attacker must first drain tens of thousands of small unmovable free
//! blocks through the vIOMMU before released sub-blocks are reused. On
//! Xen, `alloc_domheap_pages` draws p2m pages from the same
//! undifferentiated heap the guest's `XENMEM_decrease_reservation`
//! releases into — the whole §4.2.1 step disappears.
//!
//! ```sh
//! cargo run --release --example xen_comparison
//! ```

use hh_hv::xen::{steering_experiment, XenDomain};
use hh_sim::addr::HUGE_PAGE_SIZE;
use hh_sim::Gpa;
use hyperhammer::machine::Scenario;
use hyperhammer::steering::PageSteering;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::small_attack();
    println!("== KVM vs Xen: reuse of guest-released pages for (E)PT pages ==\n");

    // KVM path WITHOUT exhaustion: the noise pages soak up the spray.
    {
        let mut host = scenario.boot_host();
        let mut vm = host.create_vm(scenario.vm_config())?;
        let steering = PageSteering::new(scenario.steering_params());
        host.reset_released_log();
        let base = vm.virtio_mem().region_base();
        let victims: Vec<Gpa> = (0..6u64)
            .map(|i| base.add(i * 4 * HUGE_PAGE_SIZE))
            .collect();
        steering.release_hugepages(&mut host, &mut vm, &victims)?;
        steering.spray_ept(&mut host, &mut vm, 1 << 30)?;
        let reuse = PageSteering::reuse_stats(&host, &vm);
        println!(
            "KVM, no vIOMMU exhaustion: R = {:>4} / {} released (R_N {:>5.1}%)  <- noise wins",
            reuse.reused_pages,
            reuse.released_pages,
            100.0 * reuse.r_n()
        );
    }

    // KVM path WITH exhaustion (the paper's attack).
    {
        let mut host = scenario.boot_host();
        let mut vm = host.create_vm(scenario.vm_config())?;
        let steering = PageSteering::new(scenario.steering_params());
        steering.exhaust_noise(&mut host, &mut vm)?;
        host.reset_released_log();
        let base = vm.virtio_mem().region_base();
        let victims: Vec<Gpa> = (0..6u64)
            .map(|i| base.add(i * 4 * HUGE_PAGE_SIZE))
            .collect();
        steering.release_hugepages(&mut host, &mut vm, &victims)?;
        steering.spray_ept(&mut host, &mut vm, 1 << 30)?;
        let reuse = PageSteering::reuse_stats(&host, &vm);
        println!(
            "KVM, with exhaustion:      R = {:>4} / {} released (R_N {:>5.1}%)  <- the paper's attack",
            reuse.reused_pages,
            reuse.released_pages,
            100.0 * reuse.r_n()
        );
    }

    // Xen path: no exhaustion step exists or is needed.
    {
        let mut host = scenario.boot_host();
        let mut dom = XenDomain::create(&mut host, 512 << 21)?;
        let reuse = steering_experiment(&mut host, &mut dom, 6, 400)?;
        println!(
            "Xen, nothing to exhaust:   R = {:>4} / {} released (R_N {:>5.1}%)  <- \"even easier\" (§6)",
            reuse.reused,
            reuse.released,
            100.0 * reuse.reused as f64 / reuse.released as f64
        );
        dom.destroy(&mut host);
    }

    println!("\nXen's domheap has no migration-type separation, so the guest's");
    println!("released extents sit at the head of the very list p2m allocations");
    println!("pop — the §6 conclusion that every gMD needs its own validation.");
    Ok(())
}

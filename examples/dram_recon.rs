//! DRAM reconnaissance: the §5.1 preliminaries, standalone.
//!
//! Recovers the DRAM bank function from the row-buffer timing side
//! channel (DRAMDig-style), then searches for an effective hammer
//! pattern (TRRespass-style) — including against a DIMM with the TRR
//! mitigation enabled.
//!
//! ```sh
//! cargo run --release --example dram_recon
//! ```

use hh_dram::dramdig::recover;
use hh_dram::fault::TrrConfig;
use hh_dram::patterns::find_effective_pattern;
use hh_dram::timing::{AccessTiming, TimingProbe};
use hh_dram::{DimmProfile, DramDevice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== 1. Bank-function recovery (DRAMDig, timing only) ==");
    for (label, profile) in [
        ("Core i3-10100 (S1)", DimmProfile::s1(16 << 30)),
        ("Xeon E-2124   (S2)", DimmProfile::s2(16 << 30)),
    ] {
        let probe = TimingProbe::new(profile.geometry.clone(), AccessTiming::ddr4_2666());
        let map = recover(&probe)?;
        println!("{label}:");
        println!("  recovered: {}", map.bank_fn);
        println!(
            "  equivalent to ground truth: {} ({} measurements)",
            map.bank_fn.equivalent_to(profile.geometry.bank_fn()),
            map.measurements
        );
        println!("  definite row bits: {:?}", map.definite_row_bits);
    }

    println!("\n== 2. Hammer-pattern search (TRRespass-style) ==");
    for (label, trr) in [
        ("no TRR (paper DIMMs)", None),
        ("with TRR", Some(TrrConfig::production())),
    ] {
        let mut profile = DimmProfile::test_profile(64 << 20);
        profile.trr = trr;
        let mut device = DramDevice::new(profile, 2024);
        match find_effective_pattern(&mut device, 400_000, 64) {
            Some(result) => println!(
                "  {label}: effective pattern = {:?} ({} flips, {} activations spent)",
                result.pattern, result.flips_observed, result.activations_spent
            ),
            None => println!("  {label}: no effective pattern found"),
        }
    }
    println!("\nThe paper's DIMMs have no effective TRR: single-sided wins (§5.1).");
    Ok(())
}

//! The §6 quarantine countermeasure (the authors' QEMU patch) in action:
//! the same attack sequence runs against a stock host and a patched one,
//! and legitimate host-initiated resizes are shown to keep working.
//!
//! ```sh
//! cargo run --release --example countermeasure
//! ```

use hh_hv::HvError;
use hh_sim::addr::HUGE_PAGE_SIZE;
use hyperhammer::machine::Scenario;
use hyperhammer::steering::PageSteering;

fn attack_release(scenario: &Scenario) -> Result<usize, HvError> {
    let mut host = scenario.boot_host();
    let mut vm = host.create_vm(scenario.vm_config())?;
    let steering = PageSteering::new(scenario.steering_params());
    let base = vm.virtio_mem().region_base();
    let victims: Vec<_> = (0..4u64).map(|i| base.add(i * HUGE_PAGE_SIZE)).collect();
    steering
        .release_hugepages(&mut host, &mut vm, &victims)
        .map(|released| released.len())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== virtio-mem quarantine countermeasure (§6) ==\n");

    // 1. Stock QEMU: the voluntary release sails through.
    let stock = Scenario::small_attack();
    match attack_release(&stock) {
        Ok(n) => {
            println!("stock host:    voluntary unplug of {n} sub-blocks ACCEPTED (attack proceeds)")
        }
        Err(e) => println!("stock host:    unexpected rejection: {e}"),
    }

    // 2. Patched QEMU: the same request is NACKed.
    let patched = Scenario::small_attack().with_quarantine();
    match attack_release(&patched) {
        Ok(n) => println!("patched host:  unexpectedly accepted {n} unplugs!"),
        Err(HvError::QuarantineNack { current, requested }) => println!(
            "patched host:  unplug NACKed (plugged {current} B <= requested {requested} B) — attack blocked"
        ),
        Err(e) => println!("patched host:  rejected with {e}"),
    }

    // 3. Legitimate host-initiated resizes still work under the patch.
    println!("\n== legitimate resize under the patch ==");
    let mut host = patched.boot_host();
    let mut vm = host.create_vm(patched.vm_config())?;
    let full = vm.virtio_mem().region_size();
    vm.virtio_mem_set_requested(full - 8 * HUGE_PAGE_SIZE);
    let changed = vm.virtio_mem_sync_to_target(&mut host)?;
    println!(
        "host shrinks target by 8 sub-blocks: driver converged with {changed} unplugs \
         (plugged = {} B)",
        vm.virtio_mem().plugged_size()
    );
    vm.virtio_mem_set_requested(full);
    let changed = vm.virtio_mem_sync_to_target(&mut host)?;
    println!(
        "host grows target back:             driver converged with {changed} plugs \
         (plugged = {} B)",
        vm.virtio_mem().plugged_size()
    );
    println!("\nThe patch stops *voluntary* releases without breaking cooperative resizing.");
    println!("(The paper notes the real QEMU patch was withdrawn because the Linux");
    println!("driver does not expect NACKs — §6 discusses the protocol implications.)");
    Ok(())
}

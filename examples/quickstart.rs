//! Quickstart: the whole HyperHammer pipeline on a mid-size simulated
//! machine — profile, steer, hammer, and try to escape.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! A full escape is a lottery ticket even here (the paper's §5.3.1 bound
//! applies), so this example demonstrates each stage's *observable
//! effects* and reports whichever outcome the dice produce.

use hyperhammer::driver::{AttackDriver, AttemptOutcome, DriverParams};
use hyperhammer::machine::Scenario;
use hyperhammer::profile::Profiler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::small_attack();
    println!(
        "== HyperHammer quickstart on the '{}' scenario ==",
        scenario.name
    );
    let mut host = scenario.boot_host();
    let mut vm = host.create_vm(scenario.vm_config())?;
    println!(
        "host: {} DRAM, {} banks | attacker VM: {}",
        hh_sim::ByteSize::bytes_exact(host.dram().geometry().size_bytes()),
        host.dram().geometry().bank_count(),
        vm.config().total_mem(),
    );

    // Step 1: profile the VM's memory.
    println!("\n[1/3] profiling guest memory for Rowhammer-vulnerable bits...");
    let profiler = Profiler::new(scenario.profile_params());
    let report = profiler.run(&mut host, &mut vm)?;
    let exploitable = report
        .exploitable(scenario.profile_params().host_mem, &vm)
        .len();
    println!(
        "      {} flips found ({} 1->0, {} 0->1), {} stable, {} exploitable",
        report.total(),
        report.one_to_zero(),
        report.zero_to_one(),
        report.stable(),
        exploitable,
    );
    println!("      simulated profiling time: {}", report.duration);

    // Catalogue for reuse across respawns (debug hypercall, §5.3.2).
    let catalog = profiler.to_catalog(&vm, &report)?;
    vm.destroy(&mut host);

    // Steps 2+3: Page Steering and exploitation, end to end.
    println!("\n[2/3] Page Steering + [3/3] exploitation (up to 5 attempts)...");
    let driver = AttackDriver::new(DriverParams {
        bits_per_attempt: 4,
        ..DriverParams::paper()
    });
    let stats = driver.campaign(&scenario, &mut host, &catalog, 5)?;
    for (i, attempt) in stats.attempts.iter().enumerate() {
        let label = match &attempt.outcome {
            AttemptOutcome::Success(proof) => {
                format!("SUCCESS - read {:#x} from host memory", proof.value_read)
            }
            other => format!("{other:?}"),
        };
        println!(
            "      attempt {}: {label} ({} bits, {} sub-blocks released, {})",
            i + 1,
            attempt.bits_targeted,
            attempt.released,
            attempt.duration,
        );
    }
    match stats.first_success() {
        Some(n) => println!("\nVM escape achieved on attempt {n} — hypervisor compromised."),
        None => println!(
            "\nNo escape in 5 attempts — expected: the paper needs hundreds \
             (run `cargo run -p hh-bench --release --bin table3`)."
        ),
    }
    println!("total simulated campaign time: {}", stats.total_time);
    Ok(())
}

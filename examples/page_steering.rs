//! Page Steering, step by step, with the host's allocator state printed
//! after each move — a guided tour of §4.2.
//!
//! ```sh
//! cargo run --release --example page_steering
//! ```

use hh_sim::addr::HUGE_PAGE_SIZE;
use hyperhammer::machine::Scenario;
use hyperhammer::steering::PageSteering;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::small_attack();
    let mut host = scenario.boot_host();
    let mut vm = host.create_vm(scenario.vm_config())?;
    let steering = PageSteering::new(scenario.steering_params());

    println!(
        "== Page Steering walkthrough ({} scenario) ==\n",
        scenario.name
    );
    println!(
        "initial noise pages (free small-order MIGRATE_UNMOVABLE): {}",
        host.noise_pages()
    );

    // Step 1: vIOMMU exhaustion.
    println!("\n[STEP 1] exhausting noise pages via vIOMMU IOPT allocations...");
    let samples = steering.exhaust_noise(&mut host, &mut vm)?;
    for s in samples.iter().step_by(4) {
        println!(
            "  after {:>6} mappings: {:>6} noise pages",
            s.mappings, s.noise_pages
        );
    }
    println!(
        "  -> final: {} noise pages (threshold the spray must beat: 1024 + PCP)",
        host.noise_pages()
    );

    // Step 2: voluntary release.
    println!("\n[STEP 2] voluntarily unplugging 6 'vulnerable' sub-blocks...");
    host.reset_released_log();
    let region_base = vm.virtio_mem().region_base();
    let victims: Vec<_> = (0..6u64)
        .map(|i| region_base.add(i * 5 * HUGE_PAGE_SIZE))
        .collect();
    let released = steering.release_hugepages(&mut host, &mut vm, &victims)?;
    let info = host.pagetypeinfo();
    println!(
        "  -> released {} sub-blocks; unmovable order-9/10 free blocks now {}/{}",
        released.len(),
        info.unmovable.counts[9],
        info.unmovable.counts[10]
    );

    // Step 3: EPT spray via the iTLB-Multihit countermeasure.
    println!("\n[STEP 3] spraying EPT pages (idling function + exec per hugepage)...");
    let budget = PageSteering::spray_budget(released.len()).min(3 << 30);
    let spray = steering.spray_ept(&mut host, &mut vm, budget)?;
    println!(
        "  -> executed {} hugepages, {} multihit splits (one fresh EPT page each)",
        spray.hugepages_executed, spray.splits
    );

    let reuse = PageSteering::reuse_stats(&host, &vm);
    println!("\n== result ==");
    println!("  released pages (N): {}", reuse.released_pages);
    println!("  EPT pages (E):      {}", reuse.ept_pages);
    println!("  reused (R):         {}", reuse.reused_pages);
    println!(
        "  R_N = {:.1}%   R_E = {:.1}%",
        100.0 * reuse.r_n(),
        100.0 * reuse.r_e()
    );
    println!("\nEPT pages now sit on frames the attacker chose and can hammer.");
    Ok(())
}

//! The attack from the attacker *process's* point of view: everything
//! addressed through guest-virtual addresses obtained from `mmap`, with
//! the 21-bit physical-address leak composed through both translation
//! layers (guest THP × host THP), as §4.1 requires.
//!
//! ```sh
//! cargo run --release --example attacker_process
//! ```

use hh_hv::guest_mm::{GuestMm, GuestThp};
use hh_sim::addr::HUGE_PAGE_SIZE;
use hyperhammer::machine::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::small_attack();
    let mut host = scenario.boot_host();
    let vm = host.create_vm(scenario.vm_config())?;

    println!("== attacker process view ==\n");

    // The process mmaps a profiling buffer; the guest kernel backs it
    // with guest THP from the VM's physical memory.
    let mut mm = GuestMm::new(vm.usable_ranges(), GuestThp::Always);
    let buffer = mm.mmap(64 * HUGE_PAGE_SIZE)?;
    println!(
        "mmap({} MiB) -> GVA {} (guest-THP: {})",
        buffer.len >> 20,
        buffer.gva,
        buffer.huge
    );

    // Demonstrate the composed 21-bit leak: GVA ≡ GPA ≡ HPA (mod 2 MiB).
    println!("\nGVA -> GPA -> HPA for a few probes (low 21 bits in hex):");
    for probe in [0u64, 0x1234, 0x7_4321, 0x1f_ffc0] {
        let gva = buffer.gva.add(probe);
        let gpa = mm.translate(gva)?;
        let hpa = vm.translate_gpa(&host, gpa)?.hpa;
        println!(
            "  {gva} -> {gpa} -> {hpa}   low21: {:#07x} == {:#07x} == {:#07x}",
            gva.raw() & 0x1f_ffff,
            gpa.raw() & 0x1f_ffff,
            hpa.raw() & 0x1f_ffff,
        );
        assert_eq!(gva.raw() & 0x1f_ffff, hpa.raw() & 0x1f_ffff);
    }

    // With the leak, the process computes same-bank aggressor pairs from
    // virtual addresses alone and hammers through plain memory accesses.
    let masks = host.dram().geometry().bank_fn().masks().to_vec();
    let rel_bank = |o: u64| {
        masks.iter().enumerate().fold(0u32, |acc, (i, &m)| {
            acc | ((((o & m & 0x1f_ffff).count_ones()) & 1) << i)
        })
    };
    let o1 = 0u64; // row 0 of the hugepage
    let o2 = (1 << 18) | (1 << 14); // row 1, bank-compensated
    assert_eq!(rel_bank(o1), rel_bank(o2), "pair must share a bank");
    let gva_pair = [buffer.gva.add(o1), buffer.gva.add(o2)];
    let gpa_pair = [mm.translate(gva_pair[0])?, mm.translate(gva_pair[1])?];
    let activations = vm.hammer_gpa(&mut host, &gpa_pair, 250_000)?;
    println!(
        "\nhammered the pair (GVAs {} / {}) for {} activations — all through",
        gva_pair[0], gva_pair[1], activations
    );
    println!("process-legal loads; the physical row adjacency came for free");
    println!("from the THP x THP address leak.");

    // Cleanup demonstrates munmap.
    mm.munmap(buffer.gva)?;
    vm.destroy(&mut host);
    Ok(())
}

#!/usr/bin/env bash
# Local CI gate — the same stages .github/workflows/ci.yml runs as jobs.
#
# Everything runs with --offline --locked: the workspace is
# dependency-free by design (see DESIGN.md) and must keep building on
# machines with no registry access. Run from anywhere in the repository.
#
# usage: scripts/ci.sh [stage...]
#   With no arguments every stage runs in order; otherwise only the
#   named stages run. Stages: build test fmt clippy bench-smoke
#   determinism bench-diff.
set -euo pipefail

cd "$(dirname "$0")/.."

CURRENT_STAGE="(startup)"
trap 'echo "ci: FAILED in stage ${CURRENT_STAGE}" >&2' ERR

stage() {
    CURRENT_STAGE="$1"
    echo
    echo "=== stage: $1 ==="
}

run() {
    echo "==> $*"
    "$@"
}

stage_build() {
    stage build
    run cargo build --release --offline --locked --workspace
}

stage_test() {
    stage test
    run cargo test -q --offline --locked --workspace
}

stage_fmt() {
    stage fmt
    run cargo fmt --all --check
}

stage_clippy() {
    stage clippy
    run cargo clippy --offline --locked --workspace --all-targets -- -D warnings
}

stage_bench_smoke() {
    stage bench-smoke
    # Exercise the reporting binaries on the tiny scenario so regressions
    # in the bench crate surface here, not on the next full paper run.
    run cargo run --release --offline --locked -p hh-bench --bin table1 -- \
        --scenario tiny
    run cargo run --release --offline --locked -p hh-bench --bin table3 -- \
        --scenario tiny --attempts 5
}

stage_determinism() {
    stage determinism
    # The campaign engine must produce byte-identical --trace NDJSON for
    # every worker count (see crates/core/src/parallel.rs). Run the tiny
    # grid at 1, 2 and 8 workers and diff the merged event streams.
    local tmpdir jobs
    tmpdir="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand tmpdir now, not at trap time
    trap "rm -rf '$tmpdir'" RETURN
    for jobs in 1 2 8; do
        echo "==> campaign --jobs $jobs (tiny grid, traced)"
        # tail -n +3 drops the "N cells on M workers" banner and the
        # "trace: wrote ... to PATH" line — the only lines allowed to
        # mention the worker count or the per-run trace path.
        cargo run --release --offline --locked -q -p hyperhammer-cli -- \
            campaign --scenarios tiny --seeds 3 --attempts 2 --bits 4 \
            --jobs "$jobs" --trace "$tmpdir/trace_${jobs}.ndjson" \
            | tail -n +3 >"$tmpdir/stdout_${jobs}.txt"
    done
    run cmp "$tmpdir/trace_1.ndjson" "$tmpdir/trace_2.ndjson"
    run cmp "$tmpdir/trace_1.ndjson" "$tmpdir/trace_8.ndjson"
    run cmp "$tmpdir/stdout_1.txt" "$tmpdir/stdout_8.txt"
    echo "determinism: --jobs 1/2/8 campaign outputs are byte-identical"
}

stage_chaos() {
    stage chaos
    # Fault injection is part of the simulation, so a hostile-host
    # campaign must stay exactly as deterministic as a fault-free one:
    # identical --trace NDJSON (injections, retries and degradations
    # included) for every worker count.
    local tmpdir jobs
    tmpdir="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand tmpdir now, not at trap time
    trap "rm -rf '$tmpdir'" RETURN
    for jobs in 1 2 8; do
        echo "==> campaign --faults 0.05 --jobs $jobs (tiny grid, traced)"
        cargo run --release --offline --locked -q -p hyperhammer-cli -- \
            campaign --scenarios tiny --seeds 3 --attempts 2 --bits 4 \
            --faults 0.05 --fault-seed 37 \
            --jobs "$jobs" --trace "$tmpdir/trace_${jobs}.ndjson" \
            | tail -n +3 >"$tmpdir/stdout_${jobs}.txt"
    done
    run cmp "$tmpdir/trace_1.ndjson" "$tmpdir/trace_2.ndjson"
    run cmp "$tmpdir/trace_1.ndjson" "$tmpdir/trace_8.ndjson"
    run cmp "$tmpdir/stdout_1.txt" "$tmpdir/stdout_8.txt"
    # The injected faults must actually be there to be deterministic
    # about: a 5% plan on the tiny grid always fires at least once.
    run grep -q '"event": "fault_injected"' "$tmpdir/trace_1.ndjson"
    run grep -q '"event": "retry"' "$tmpdir/trace_1.ndjson"
    echo "chaos: --faults 0.05 campaign outputs are byte-identical across --jobs 1/2/8"
}

stage_bench_diff() {
    stage bench-diff
    run scripts/bench_diff.sh
}

ALL_STAGES=(build test fmt clippy bench-smoke determinism chaos bench-diff)
if [ "$#" -gt 0 ]; then
    STAGES=("$@")
else
    STAGES=("${ALL_STAGES[@]}")
fi

for name in "${STAGES[@]}"; do
    case "$name" in
        build) stage_build ;;
        test) stage_test ;;
        fmt) stage_fmt ;;
        clippy) stage_clippy ;;
        bench-smoke) stage_bench_smoke ;;
        determinism) stage_determinism ;;
        chaos) stage_chaos ;;
        bench-diff) stage_bench_diff ;;
        *)
            CURRENT_STAGE="$name"
            echo "ci: unknown stage '$name' (stages: ${ALL_STAGES[*]})" >&2
            exit 2
            ;;
    esac
done

echo
echo "ci: all green (${STAGES[*]})"

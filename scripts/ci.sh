#!/usr/bin/env bash
# Local CI gate — the same stages .github/workflows/ci.yml runs as jobs.
#
# Everything runs with --offline --locked: the workspace is
# dependency-free by design (see DESIGN.md) and must keep building on
# machines with no registry access. Run from anywhere in the repository.
#
# usage: scripts/ci.sh [stage...]
#   With no arguments every stage runs in order; otherwise only the
#   named stages run. Stages: build test fmt clippy bench-smoke
#   determinism chaos scaling-sanity memory-cap server-smoke
#   snapshot-roundtrip variant-matrix bench-diff.
#
# All binary-driving stages share ONE --locked release build
# (build_release below): the first stage that needs target/release pays
# for it, the rest reuse it. A per-stage wall-clock summary prints at
# the end of the run.
set -euo pipefail

cd "$(dirname "$0")/.."

CURRENT_STAGE="(startup)"
trap 'echo "ci: FAILED in stage ${CURRENT_STAGE}" >&2' ERR

stage() {
    CURRENT_STAGE="$1"
    echo
    echo "=== stage: $1 ==="
}

run() {
    echo "==> $*"
    "$@"
}

SIM=./target/release/hyperhammer-sim
RELEASE_BUILT=0

# The one shared release build: every stage that needs target/release
# binaries calls this; only the first call compiles anything.
build_release() {
    if [ "$RELEASE_BUILT" = 0 ]; then
        run cargo build --release --offline --locked --workspace
        RELEASE_BUILT=1
    fi
}

stage_build() {
    stage build
    build_release
}

stage_test() {
    stage test
    run cargo test -q --offline --locked --workspace
}

stage_fmt() {
    stage fmt
    run cargo fmt --all --check
}

stage_clippy() {
    stage clippy
    run cargo clippy --offline --locked --workspace --all-targets -- -D warnings
}

stage_bench_smoke() {
    stage bench-smoke
    # Exercise the reporting binaries on the tiny scenario so regressions
    # in the bench crate surface here, not on the next full paper run.
    build_release
    run ./target/release/table1 --scenario tiny
    run ./target/release/table3 --scenario tiny --attempts 5
}

stage_determinism() {
    stage determinism
    # The campaign engine must produce byte-identical --trace NDJSON for
    # every worker count (see crates/core/src/parallel.rs). Run the tiny
    # grid at 1, 2 and 8 workers and diff the merged event streams.
    local tmpdir jobs
    tmpdir="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand tmpdir now, not at trap time
    trap "rm -rf '$tmpdir'" RETURN
    build_release
    for jobs in 1 2 8; do
        echo "==> campaign --jobs $jobs (tiny grid, traced)"
        # tail -n +3 drops the "N cells on M workers" banner and the
        # "trace: wrote ... to PATH" line — the only lines allowed to
        # mention the worker count or the per-run trace path.
        "$SIM" \
            campaign --scenarios tiny --seeds 3 --attempts 2 --bits 4 \
            --jobs "$jobs" --trace "$tmpdir/trace_${jobs}.ndjson" \
            | tail -n +3 >"$tmpdir/stdout_${jobs}.txt"
    done
    run cmp "$tmpdir/trace_1.ndjson" "$tmpdir/trace_2.ndjson"
    run cmp "$tmpdir/trace_1.ndjson" "$tmpdir/trace_8.ndjson"
    run cmp "$tmpdir/stdout_1.txt" "$tmpdir/stdout_8.txt"
    echo "determinism: --jobs 1/2/8 campaign outputs are byte-identical"
}

stage_chaos() {
    stage chaos
    # Fault injection is part of the simulation, so a hostile-host
    # campaign must stay exactly as deterministic as a fault-free one:
    # identical --trace NDJSON (injections, retries and degradations
    # included) for every worker count.
    local tmpdir jobs
    tmpdir="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand tmpdir now, not at trap time
    trap "rm -rf '$tmpdir'" RETURN
    build_release
    for jobs in 1 2 8; do
        echo "==> campaign --faults 0.05 --jobs $jobs (tiny grid, traced)"
        "$SIM" \
            campaign --scenarios tiny --seeds 3 --attempts 2 --bits 4 \
            --faults 0.05 --fault-seed 37 \
            --jobs "$jobs" --trace "$tmpdir/trace_${jobs}.ndjson" \
            | tail -n +3 >"$tmpdir/stdout_${jobs}.txt"
    done
    run cmp "$tmpdir/trace_1.ndjson" "$tmpdir/trace_2.ndjson"
    run cmp "$tmpdir/trace_1.ndjson" "$tmpdir/trace_8.ndjson"
    run cmp "$tmpdir/stdout_1.txt" "$tmpdir/stdout_8.txt"
    # The injected faults must actually be there to be deterministic
    # about: a 5% plan on the tiny grid always fires at least once.
    run grep -q '"event": "fault_injected"' "$tmpdir/trace_1.ndjson"
    run grep -q '"event": "retry"' "$tmpdir/trace_1.ndjson"
    echo "chaos: --faults 0.05 campaign outputs are byte-identical across --jobs 1/2/8"
}

stage_scaling_sanity() {
    stage scaling-sanity
    # The work-stealing engine's whole point: more workers must never
    # make a campaign slower (the static-split engine was ~24% slower at
    # 4 workers than serial on a 1-CPU host). Run an 8-cell tiny grid at
    # 1/2/4/8 workers, require the 4-worker run to be no slower than
    # serial (plus timing-noise headroom), and require the traced NDJSON
    # to stay byte-identical across every worker count.
    local tmpdir jobs t0 t1 ncpus
    declare -A elapsed
    tmpdir="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand tmpdir now, not at trap time
    trap "rm -rf '$tmpdir'" RETURN
    build_release
    for jobs in 1 2 4 8; do
        echo "==> campaign --jobs $jobs (8-cell tiny grid, traced)"
        t0=$(date +%s%N)
        ./target/release/hyperhammer-sim \
            campaign --scenarios tiny --seeds 8 --attempts 2 --bits 4 \
            --jobs "$jobs" --trace "$tmpdir/trace_${jobs}.ndjson" \
            | tail -n +3 >"$tmpdir/stdout_${jobs}.txt"
        t1=$(date +%s%N)
        elapsed[$jobs]=$(((t1 - t0) / 1000000))
        echo "    ${elapsed[$jobs]} ms"
    done
    run cmp "$tmpdir/trace_1.ndjson" "$tmpdir/trace_2.ndjson"
    run cmp "$tmpdir/trace_1.ndjson" "$tmpdir/trace_4.ndjson"
    run cmp "$tmpdir/trace_1.ndjson" "$tmpdir/trace_8.ndjson"
    run cmp "$tmpdir/stdout_1.txt" "$tmpdir/stdout_4.txt"
    # 4 workers no slower than serial (25% headroom for timer noise).
    if [ "${elapsed[4]}" -gt $((elapsed[1] * 125 / 100)) ]; then
        echo "scaling-sanity: inverted scaling — 4 workers took" \
            "${elapsed[4]} ms vs ${elapsed[1]} ms serial" >&2
        return 1
    fi
    ncpus=$(nproc 2>/dev/null || echo 1)
    if [ "$ncpus" -ge 4 ]; then
        # With real cores behind the workers, demand actual speedup.
        if [ $((elapsed[1] * 100)) -lt $((elapsed[4] * 150)) ]; then
            echo "scaling-sanity: expected >=1.5x at 4 workers on $ncpus CPUs:" \
                "serial ${elapsed[1]} ms vs 4-worker ${elapsed[4]} ms" >&2
            return 1
        fi
    else
        echo "scaling-sanity: $ncpus CPU(s) — skipping the >=1.5x speedup" \
            "check (effective workers are clamped to the CPU count)"
    fi
    echo "scaling-sanity: 4 workers no slower than serial; traces" \
        "byte-identical across --jobs 1/2/4/8"
}

stage_memory_cap() {
    stage memory-cap
    # The streaming campaign path promises O(workers) memory: peak RSS
    # (VmHWM, reported on stderr) of a 4096-cell micro campaign must
    # stay within 2x of a 64-cell run at the same --jobs, and the
    # merged streaming NDJSON must be byte-identical to the in-memory
    # --json output at 1/2/8 workers.
    local tmpdir jobs cells rss_small rss_large
    tmpdir="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand tmpdir now, not at trap time
    trap "rm -rf '$tmpdir'" RETURN
    build_release

    for cells in 64 4096; do
        echo "==> campaign --stream-out --jobs 2 (${cells}-cell micro grid)"
        ./target/release/hyperhammer-sim \
            campaign --scenarios micro --seeds "$cells" --attempts 2 --bits 4 \
            --jobs 2 --json --stream-out "$tmpdir/stream_${cells}" \
            >/dev/null 2>"$tmpdir/rss_${cells}.txt"
        cat "$tmpdir/rss_${cells}.txt"
    done
    rss_small=$(sed -n 's/^campaign: peak RSS \([0-9]*\) KiB$/\1/p' "$tmpdir/rss_64.txt")
    rss_large=$(sed -n 's/^campaign: peak RSS \([0-9]*\) KiB$/\1/p' "$tmpdir/rss_4096.txt")
    if [ -z "$rss_small" ] || [ -z "$rss_large" ]; then
        echo "memory-cap: peak RSS report missing from campaign stderr" >&2
        return 1
    fi
    if [ "$rss_large" -gt $((rss_small * 2)) ]; then
        echo "memory-cap: streaming peak RSS grew with cell count:" \
            "${rss_small} KiB @ 64 cells -> ${rss_large} KiB @ 4096 cells" >&2
        return 1
    fi

    # Byte-identity: in-memory --json vs the streamed merge, 1/2/8 workers.
    # --json emits pure NDJSON (the human banner only prints without it).
    ./target/release/hyperhammer-sim \
        campaign --scenarios micro --seeds 16 --attempts 2 --bits 4 \
        --jobs 1 --json >"$tmpdir/inmem_cells.ndjson" 2>/dev/null
    for jobs in 1 2 8; do
        echo "==> streaming byte-identity at --jobs $jobs"
        ./target/release/hyperhammer-sim \
            campaign --scenarios micro --seeds 16 --attempts 2 --bits 4 \
            --jobs "$jobs" --json --stream-out "$tmpdir/eq_${jobs}" \
            >/dev/null 2>/dev/null
        run cmp "$tmpdir/inmem_cells.ndjson" "$tmpdir/eq_${jobs}/cells.ndjson"
    done
    echo "memory-cap: 4096-cell streaming peaked at ${rss_large} KiB" \
        "(64-cell: ${rss_small} KiB); merged output byte-identical at --jobs 1/2/8"
}

stage_server_smoke() {
    stage server-smoke
    # End-to-end over real sockets: start the campaign daemon on an
    # ephemeral port, submit two overlapping jobs, cancel one mid-run,
    # stream the other and require its NDJSON byte-identical to a serial
    # `campaign --json --jobs 1` run, then shut the server down remotely
    # and demand a clean exit (leak-free thread teardown).
    local tmpdir sim addr server_pid
    tmpdir="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand tmpdir now, not at trap time
    trap "rm -rf '$tmpdir'" RETURN
    build_release
    sim=$SIM

    "$sim" serve --addr 127.0.0.1:0 >"$tmpdir/serve.log" 2>&1 &
    server_pid=$!
    for _ in $(seq 50); do
        addr=$(sed -n 's/^listening on //p' "$tmpdir/serve.log")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "server-smoke: server never reported its address" >&2
        kill "$server_pid" 2>/dev/null || true
        return 1
    fi
    echo "==> campaign server at $addr"

    # A long job to cancel mid-run, and a short one to stream to the end.
    local victim_id stream_id
    victim_id=$("$sim" client submit --addr "$addr" --json \
        --scenarios tiny --seeds 12 --attempts 2 --bits 4 --jobs 1 \
        | sed -n 's/.*"id": \([0-9]*\).*/\1/p')
    stream_id=$("$sim" client submit --addr "$addr" --json \
        --scenarios micro --seeds 4 --attempts 2 --bits 4 \
        | sed -n 's/.*"id": \([0-9]*\).*/\1/p')
    echo "==> submitted jobs $victim_id (to cancel) and $stream_id (to stream)"
    run "$sim" client cancel --addr "$addr" --id "$victim_id"
    echo "==> $sim client stream --addr $addr --id $stream_id"
    "$sim" client stream --addr "$addr" --id "$stream_id" \
        >"$tmpdir/streamed.ndjson"
    "$sim" campaign --scenarios micro --seeds 4 --attempts 2 --bits 4 \
        --jobs 1 --json >"$tmpdir/serial.ndjson" 2>/dev/null
    run cmp "$tmpdir/serial.ndjson" "$tmpdir/streamed.ndjson"
    run "$sim" client status --addr "$addr" --id "$victim_id"

    run "$sim" client shutdown --addr "$addr"
    if ! wait "$server_pid"; then
        echo "server-smoke: server exited non-zero after shutdown" >&2
        return 1
    fi
    echo "server-smoke: streamed NDJSON byte-identical to the serial run;" \
        "mid-run cancel and remote shutdown exited cleanly"
}

stage_snapshot_roundtrip() {
    stage snapshot-roundtrip
    # The checkpoint/resume promise: a faulted campaign interrupted
    # mid-run and resumed from its checkpoint emits NDJSON byte-identical
    # to an uninterrupted run, at every worker count. Then the same
    # promise for the server: kill -9 mid-job, restart on the same spool
    # dir, and the resumed job's stream must match a serial CLI run.
    # Finally the snap-v1 format-compat gate: the committed golden
    # fixture must still decode and re-encode bit-identically.
    local tmpdir jobs addr addr2 server_pid job_id
    tmpdir="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand tmpdir now, not at trap time
    trap "rm -rf '$tmpdir'" RETURN
    build_release

    # --- CLI checkpoint/resume byte-identity (faulted grid) ---
    "$SIM" campaign --scenarios tiny --seeds 3 --attempts 2 --bits 4 \
        --faults 0.05 --fault-seed 37 --jobs 1 --json \
        >"$tmpdir/ref.ndjson" 2>/dev/null
    for jobs in 1 2 8; do
        echo "==> checkpoint at 2 cells, resume with --jobs $jobs"
        "$SIM" campaign --scenarios tiny --seeds 3 --attempts 2 --bits 4 \
            --faults 0.05 --fault-seed 37 --jobs "$jobs" --json \
            --checkpoint "$tmpdir/ck_${jobs}" --stop-after-cells 2 \
            >/dev/null 2>/dev/null
        "$SIM" campaign --resume "$tmpdir/ck_${jobs}" --jobs "$jobs" --json \
            >"$tmpdir/resumed_${jobs}.ndjson" 2>/dev/null
        run cmp "$tmpdir/ref.ndjson" "$tmpdir/resumed_${jobs}.ndjson"
    done
    echo "snapshot-roundtrip: interrupted+resumed output byte-identical" \
        "to the uninterrupted run at --jobs 1/2/8"

    # --- server spool survives kill -9 ---
    "$SIM" serve --addr 127.0.0.1:0 --spool "$tmpdir/spool" \
        >"$tmpdir/serve.log" 2>&1 &
    server_pid=$!
    for _ in $(seq 50); do
        addr=$(sed -n 's/^listening on //p' "$tmpdir/serve.log")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "snapshot-roundtrip: server never reported its address" >&2
        kill "$server_pid" 2>/dev/null || true
        return 1
    fi
    job_id=$("$SIM" client submit --addr "$addr" --json \
        --scenarios tiny --seeds 12 --attempts 2 --bits 4 --jobs 1 \
        | sed -n 's/.*"id": \([0-9]*\).*/\1/p')
    echo "==> submitted job $job_id to $addr; kill -9 mid-run"
    sleep 0.5
    kill -9 "$server_pid"
    wait "$server_pid" 2>/dev/null || true
    if [ ! -f "$tmpdir/spool/job-${job_id}.json" ]; then
        echo "snapshot-roundtrip: job $job_id finished before kill -9" \
            "(or was never spooled) — nothing to resume" >&2
        return 1
    fi

    "$SIM" serve --addr 127.0.0.1:0 --spool "$tmpdir/spool" \
        >"$tmpdir/serve2.log" 2>&1 &
    server_pid=$!
    for _ in $(seq 50); do
        addr2=$(sed -n 's/^listening on //p' "$tmpdir/serve2.log")
        [ -n "$addr2" ] && break
        sleep 0.1
    done
    if [ -z "$addr2" ]; then
        echo "snapshot-roundtrip: restarted server never reported its address" >&2
        kill "$server_pid" 2>/dev/null || true
        return 1
    fi
    echo "==> restarted on $addr2 with the same spool; streaming job $job_id"
    "$SIM" client stream --addr "$addr2" --id "$job_id" \
        >"$tmpdir/streamed.ndjson"
    "$SIM" campaign --scenarios tiny --seeds 12 --attempts 2 --bits 4 \
        --jobs 1 --json >"$tmpdir/serial.ndjson" 2>/dev/null
    run cmp "$tmpdir/serial.ndjson" "$tmpdir/streamed.ndjson"
    run "$SIM" client shutdown --addr "$addr2"
    if ! wait "$server_pid"; then
        echo "snapshot-roundtrip: server exited non-zero after shutdown" >&2
        return 1
    fi
    if compgen -G "$tmpdir/spool/job-*" >/dev/null; then
        echo "snapshot-roundtrip: spool files left behind after job completed" >&2
        return 1
    fi
    echo "snapshot-roundtrip: kill -9'd job resumed from the spool" \
        "byte-identical to a serial run"

    # --- snap-v1 format-compat gate (golden fixture) ---
    run cargo test -q --release --offline --locked -p hyperhammer \
        --test snapshot_compat
}

stage_variant_matrix() {
    stage variant-matrix
    # The attack-variant sweep: a scenario x variant grid (virtio-mem,
    # balloon, xen, pthammer, gbhammer cells side by side) must emit
    # byte-identical NDJSON — cell records plus the per-variant
    # comparison report — at every worker count, in memory and streamed.
    local tmpdir jobs
    tmpdir="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand tmpdir now, not at trap time
    trap "rm -rf '$tmpdir'" RETURN
    build_release
    for jobs in 1 2 8; do
        echo "==> campaign --scenarios tiny@all,micro@all --jobs $jobs"
        "$SIM" campaign --scenarios tiny@all,micro@all \
            --seeds 2 --attempts 2 --bits 4 --jobs "$jobs" --json \
            >"$tmpdir/variants_${jobs}.ndjson" 2>/dev/null
    done
    run cmp "$tmpdir/variants_1.ndjson" "$tmpdir/variants_2.ndjson"
    run cmp "$tmpdir/variants_1.ndjson" "$tmpdir/variants_8.ndjson"
    echo "==> streamed sweep at --jobs 4"
    "$SIM" campaign --scenarios tiny@all,micro@all \
        --seeds 2 --attempts 2 --bits 4 --jobs 4 --json \
        --stream-out "$tmpdir/stream" \
        >"$tmpdir/variants_streamed.ndjson" 2>/dev/null
    run cmp "$tmpdir/variants_1.ndjson" "$tmpdir/variants_streamed.ndjson"
    # The sweep must actually span the matrix: every variant's cells and
    # its row in the comparison report.
    local variant
    for variant in balloon xen pthammer gbhammer; do
        run grep -q "\"scenario\": \"tiny@${variant}\"" "$tmpdir/variants_1.ndjson"
        run grep -q "\"variant\": \"${variant}\"" "$tmpdir/variants_1.ndjson"
    done
    run grep -q '"variant": "virtio-mem"' "$tmpdir/variants_1.ndjson"
    echo "variant-matrix: scenario x variant sweep byte-identical across" \
        "--jobs 1/2/8 and the streamed path, all five variants present"
}

stage_bench_diff() {
    stage bench-diff
    run scripts/bench_diff.sh
}

ALL_STAGES=(build test fmt clippy bench-smoke determinism chaos scaling-sanity memory-cap server-smoke snapshot-roundtrip variant-matrix bench-diff)
if [ "$#" -gt 0 ]; then
    STAGES=("$@")
else
    STAGES=("${ALL_STAGES[@]}")
fi

STAGE_SUMMARY=()
for name in "${STAGES[@]}"; do
    stage_t0=$(date +%s%N)
    case "$name" in
        build) stage_build ;;
        test) stage_test ;;
        fmt) stage_fmt ;;
        clippy) stage_clippy ;;
        bench-smoke) stage_bench_smoke ;;
        determinism) stage_determinism ;;
        chaos) stage_chaos ;;
        scaling-sanity) stage_scaling_sanity ;;
        memory-cap) stage_memory_cap ;;
        server-smoke) stage_server_smoke ;;
        snapshot-roundtrip) stage_snapshot_roundtrip ;;
        variant-matrix) stage_variant_matrix ;;
        bench-diff) stage_bench_diff ;;
        *)
            CURRENT_STAGE="$name"
            echo "ci: unknown stage '$name' (stages: ${ALL_STAGES[*]})" >&2
            exit 2
            ;;
    esac
    stage_t1=$(date +%s%N)
    STAGE_SUMMARY+=("$(printf '%-20s %7d ms' "$name" $(((stage_t1 - stage_t0) / 1000000)))")
done

echo
echo "ci: stage wall-clock:"
for line in "${STAGE_SUMMARY[@]}"; do
    echo "  $line"
done
echo "ci: all green (${STAGES[*]})"

#!/usr/bin/env bash
# Local CI gate: build, test, format check, lint.
#
# Everything runs with --offline — the workspace is dependency-free by
# design (see DESIGN.md) and must keep building on machines with no
# registry access. Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo fmt --all --check
run cargo clippy --offline --workspace --all-targets -- -D warnings

# Bench smoke: exercise the reporting binaries and the scaling bench on
# the tiny scenario so regressions in the bench crate surface here, not
# on the next full paper run. HH_BENCH_QUICK shrinks campaign_scaling
# to a few seconds while keeping its determinism assertion.
run cargo run --release --offline -p hh-bench --bin table1 -- --scenario tiny
run cargo run --release --offline -p hh-bench --bin table3 -- --scenario tiny --attempts 5
run env HH_BENCH_QUICK=1 cargo bench --offline -p hh-bench --bench campaign_scaling

echo "ci: all green"

#!/usr/bin/env bash
# Local CI gate: build, test, format check, lint.
#
# Everything runs with --offline — the workspace is dependency-free by
# design (see DESIGN.md) and must keep building on machines with no
# registry access. Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo fmt --all --check
run cargo clippy --offline --workspace --all-targets -- -D warnings

echo "ci: all green"

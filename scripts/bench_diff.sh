#!/usr/bin/env bash
# Guard the committed perf baselines (BENCH_dram.json, BENCH_campaign.json).
#
# Runs the dram_hammer and campaign_scaling benches in quick mode
# (HH_BENCH_QUICK=1), captures their machine-readable reports via
# HH_BENCH_JSON, and compares each against the committed baseline with
# `hyperhammer-sim bench-diff`. Exits non-zero when any bench regresses
# beyond the tolerance or disappears from the current run; improvements
# beyond the tolerance never fail, but print a re-baseline hint (a stale
# baseline would let regressions hide under it). Quick-mode
# reports are only comparable with quick-mode baselines (the JSON schema
# records which mode produced it and bench-diff refuses to mix them), so
# the committed baselines are quick-mode runs too.
#
# usage: scripts/bench_diff.sh [--tolerance F] [--update]
#   --tolerance F   allowed relative slowdown before failing
#                   (default 0.15 = +15%)
#   --update        re-baseline: overwrite the committed BENCH_*.json
#                   with this run instead of diffing against them
set -euo pipefail

cd "$(dirname "$0")/.."

TOLERANCE=0.15
UPDATE=0
while [ "$#" -gt 0 ]; do
    case "$1" in
        --tolerance)
            TOLERANCE="${2:?--tolerance needs a value}"
            shift 2
            ;;
        --update)
            UPDATE=1
            shift
            ;;
        *)
            echo "usage: scripts/bench_diff.sh [--tolerance F] [--update]" >&2
            exit 2
            ;;
    esac
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "==> build hyperhammer-sim (release, offline)"
cargo build --release --offline --locked -p hyperhammer-cli

bench_json() { # <bench target> <output path>
    echo "==> cargo bench -p hh-bench --bench $1 (quick)"
    HH_BENCH_QUICK=1 HH_BENCH_JSON="$2" \
        cargo bench --offline --locked -p hh-bench --bench "$1"
}

bench_json dram_hammer "$tmpdir/BENCH_dram.json"
bench_json campaign_scaling "$tmpdir/BENCH_campaign.json"

if [ "$UPDATE" -eq 1 ]; then
    cp "$tmpdir/BENCH_dram.json" BENCH_dram.json
    cp "$tmpdir/BENCH_campaign.json" BENCH_campaign.json
    echo "bench_diff: baselines rewritten — review and commit" \
        "BENCH_dram.json BENCH_campaign.json"
    exit 0
fi

status=0
for name in dram campaign; do
    echo "==> bench-diff BENCH_${name}.json (tolerance ${TOLERANCE})"
    if ! ./target/release/hyperhammer-sim bench-diff \
        --baseline "BENCH_${name}.json" \
        --current "$tmpdir/BENCH_${name}.json" \
        --tolerance "$TOLERANCE"; then
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "bench_diff: FAILED — regression(s) beyond tolerance, see above" >&2
    echo "bench_diff: if the slowdown is intended, re-baseline with" \
        "scripts/bench_diff.sh --update and commit the result" >&2
else
    echo "bench_diff: OK — within tolerance of the committed baselines"
    echo "bench_diff: (an 'improved' note above means the baseline now" \
        "understates real perf — lock it in with scripts/bench_diff.sh --update)"
fi
exit "$status"
